package store

import (
	"bytes"
	"testing"
)

// FuzzWALDecode hammers the frame parser with arbitrary bytes. The
// recovery contract under fuzzing:
//
//   - decoding never panics and never claims a valid prefix longer than
//     the input,
//   - the valid prefix is self-consistent: re-decoding it yields the same
//     records and consumes it fully (recovery truncates to this prefix,
//     so it must be a fixed point), and
//   - appending a fresh record after the valid prefix — what the store
//     does after truncating a torn tail — decodes to the old records
//     plus the new one, i.e. recovery never resurrects bytes past a
//     corrupt frame.
func FuzzWALDecode(f *testing.F) {
	var seed []byte
	seed = appendFrame(seed, []byte("key"), []byte("value"))
	seed = appendFrame(seed, []byte("k2"), bytes.Repeat([]byte{0xab}, 100))
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped) // corrupt payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := decodeFrames(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(data))
		}
		again, valid2 := decodeFrames(data[:valid])
		if valid2 != valid {
			t.Fatalf("valid prefix not a fixed point: %d -> %d", valid, valid2)
		}
		if len(again) != len(recs) {
			t.Fatalf("re-decode yielded %d records, want %d", len(again), len(recs))
		}
		for i := range recs {
			if !bytes.Equal(recs[i].key, again[i].key) || !bytes.Equal(recs[i].value, again[i].value) {
				t.Fatalf("record %d differs on re-decode", i)
			}
		}

		// Post-truncation append: only the old records plus the new one
		// may surface; corrupt bytes must never come back.
		healed := appendFrame(append([]byte(nil), data[:valid]...), []byte("new-key"), []byte("new-val"))
		recs3, valid3 := decodeFrames(healed)
		if valid3 != len(healed) {
			t.Fatalf("healed log has invalid tail: %d != %d", valid3, len(healed))
		}
		if len(recs3) != len(recs)+1 {
			t.Fatalf("healed log has %d records, want %d", len(recs3), len(recs)+1)
		}
		last := recs3[len(recs3)-1]
		if string(last.key) != "new-key" || string(last.value) != "new-val" {
			t.Fatalf("appended record corrupted: %q/%q", last.key, last.value)
		}
	})
}
