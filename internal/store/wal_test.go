package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"flare/internal/obs"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	want := []record{
		{key: []byte("a"), value: []byte("1")},
		{key: []byte("bb"), value: nil},
		{key: []byte("ccc"), value: bytes.Repeat([]byte{0xff}, 1000)},
		{key: []byte{0}, value: []byte{0, 0, 0}},
	}
	for _, r := range want {
		buf = appendFrame(buf, r.key, r.value)
	}
	got, valid := decodeFrames(buf)
	if valid != len(buf) {
		t.Fatalf("valid = %d, want %d", valid, len(buf))
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i].key, want[i].key) || !bytes.Equal(got[i].value, want[i].value) {
			t.Errorf("record %d = %q/%q, want %q/%q", i, got[i].key, got[i].value, want[i].key, want[i].value)
		}
	}
}

func TestDecodeStopsAtTruncation(t *testing.T) {
	var buf []byte
	buf = appendFrame(buf, []byte("k1"), []byte("v1"))
	whole := len(buf)
	buf = appendFrame(buf, []byte("k2"), []byte("v2"))

	for cut := whole + 1; cut < len(buf); cut++ {
		recs, valid := decodeFrames(buf[:cut])
		if len(recs) != 1 || valid != whole {
			t.Fatalf("cut=%d: decoded %d records, valid=%d; want 1 record, valid=%d",
				cut, len(recs), valid, whole)
		}
	}
}

func TestDecodeStopsAtCorruption(t *testing.T) {
	var buf []byte
	buf = appendFrame(buf, []byte("k1"), []byte("v1"))
	whole := len(buf)
	buf = appendFrame(buf, []byte("k2"), []byte("v2"))
	buf = appendFrame(buf, []byte("k3"), []byte("v3"))

	// Flip one bit in the second frame: decoding must stop after the
	// first record and never surface the third.
	for bit := 0; bit < 8; bit++ {
		cp := append([]byte(nil), buf...)
		cp[whole+4] ^= 1 << bit
		recs, valid := decodeFrames(cp)
		if len(recs) != 1 || valid != whole {
			t.Fatalf("bit=%d: decoded %d records, valid=%d; want 1, %d", bit, len(recs), valid, whole)
		}
	}
}

func TestDecodeRejectsHugeLength(t *testing.T) {
	buf := make([]byte, frameHeaderSize)
	buf[0] = 0xff
	buf[1] = 0xff
	buf[2] = 0xff
	buf[3] = 0xff
	recs, valid := decodeFrames(buf)
	if len(recs) != 0 || valid != 0 {
		t.Fatalf("huge length decoded: %d records, valid=%d", len(recs), valid)
	}
}

func TestWALGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "wal-000000.log"))
	if err != nil {
		t.Fatal(err)
	}
	w := newWAL(f, 0, 0, true, newStoreMetrics(obs.NewRegistry()), nil)

	const writers, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("w%02d-%04d", g, i)
				if err := w.append(appendFrame(nil, []byte(key), []byte("v"))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	buf, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	recs, valid := decodeFrames(buf)
	if valid != len(buf) {
		t.Fatalf("wal has invalid tail: valid=%d len=%d", valid, len(buf))
	}
	if len(recs) != writers*per {
		t.Fatalf("wal holds %d records, want %d", len(recs), writers*per)
	}
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		seen[string(r.key)] = true
	}
	if len(seen) != writers*per {
		t.Fatalf("wal holds %d distinct keys, want %d", len(seen), writers*per)
	}
}

func TestWALAppendAfterCloseFails(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "wal-000000.log"))
	if err != nil {
		t.Fatal(err)
	}
	w := newWAL(f, 0, 0, false, newStoreMetrics(obs.NewRegistry()), nil)
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	if err := w.append(appendFrame(nil, []byte("k"), []byte("v"))); err == nil {
		t.Error("append after close did not error")
	}
}
