package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

const manifestName = "MANIFEST"

// manifestState is the store's durable catalog: which segment files are
// live (oldest first), which WAL generation is current, and the next
// fresh segment id. It is tiny and rewritten whole — temp file, fsync,
// rename, dir fsync — so a crash leaves either the old or the new
// catalog, never a mix.
type manifestState struct {
	// WALGen numbers the current write-ahead log file (wal-<gen>.log).
	// Flushes bump it, making every WAL generation correspond to exactly
	// one memtable lifetime.
	WALGen uint64 `json:"wal_gen"`
	// Segments lists live segment ids, oldest first. Scans resolve
	// duplicate keys newest-segment-wins.
	Segments []uint64 `json:"segments"`
	// NextSegID is the id the next flushed or compacted segment takes.
	NextSegID uint64 `json:"next_segment_id"`
}

func manifestPath(dir string) string { return filepath.Join(dir, manifestName) }

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%06d.log", gen))
}

// loadManifest reads the catalog; a missing file is a fresh store.
func loadManifest(dir string) (manifestState, error) {
	var st manifestState
	buf, err := os.ReadFile(manifestPath(dir))
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return st, fmt.Errorf("store: reading manifest: %w", err)
	}
	if err := json.Unmarshal(buf, &st); err != nil {
		return st, fmt.Errorf("store: decoding manifest: %w", err)
	}
	return st, nil
}

// saveManifest atomically replaces the catalog.
func saveManifest(dir string, st manifestState) error {
	buf, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	tmp := manifestPath(dir) + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, manifestPath(dir)); err != nil {
		return fmt.Errorf("store: publishing manifest: %w", err)
	}
	return syncDir(dir)
}
