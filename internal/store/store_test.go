package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"flare/internal/obs"
)

// testOptions keeps tests independent of the process-default registry.
func testOptions() Options {
	o := DefaultOptions()
	o.Registry = obs.NewRegistry()
	return o
}

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustAppend(t *testing.T, s *Store, key, value string) {
	t.Helper()
	if err := s.Append([]byte(key), []byte(value)); err != nil {
		t.Fatal(err)
	}
}

// collect scans a snapshot into parallel key/value slices.
func collect(sn *Snapshot) (keys, vals []string) {
	sn.Scan(func(k, v []byte) bool {
		keys = append(keys, string(k))
		vals = append(vals, string(v))
		return true
	})
	return keys, vals
}

func TestAppendGetScan(t *testing.T) {
	s := openTest(t, t.TempDir(), testOptions())
	defer s.Close()

	mustAppend(t, s, "b", "2")
	mustAppend(t, s, "a", "1")
	mustAppend(t, s, "c", "3")
	mustAppend(t, s, "a", "1b") // overwrite: last write wins

	if v, ok := s.Get([]byte("a")); !ok || string(v) != "1b" {
		t.Errorf("Get(a) = %q,%v, want 1b,true", v, ok)
	}
	if _, ok := s.Get([]byte("zz")); ok {
		t.Error("Get(zz) found a value")
	}
	sn := s.Snapshot()
	defer sn.Release()
	keys, vals := collect(sn)
	if fmt.Sprint(keys) != "[a b c]" || fmt.Sprint(vals) != "[1b 2 3]" {
		t.Errorf("Scan = %v/%v, want [a b c]/[1b 2 3]", keys, vals)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s := openTest(t, t.TempDir(), testOptions())
	defer s.Close()
	if err := s.Append(nil, []byte("v")); err == nil {
		t.Error("empty key did not error")
	}
}

func TestFlushAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	for i := 0; i < 100; i++ {
		mustAppend(t, s, fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Segments; got != 1 {
		t.Fatalf("segments after flush = %d, want 1", got)
	}
	mustAppend(t, s, "k999", "tail") // lands in the post-flush WAL
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, testOptions())
	defer s2.Close()
	sn := s2.Snapshot()
	defer sn.Release()
	if n := sn.Len(); n != 101 {
		t.Fatalf("reopened store has %d keys, want 101", n)
	}
	if v, ok := sn.Get([]byte("k050")); !ok || string(v) != "v50" {
		t.Errorf("Get(k050) = %q,%v, want v50,true", v, ok)
	}
	if v, ok := sn.Get([]byte("k999")); !ok || string(v) != "tail" {
		t.Errorf("Get(k999) = %q,%v, want tail,true", v, ok)
	}
}

func TestOverwriteAcrossFlushes(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	mustAppend(t, s, "k", "old")
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, "k", "mid")
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, "k", "new") // memtable beats both segments
	if v, ok := s.Get([]byte("k")); !ok || string(v) != "new" {
		t.Fatalf("Get(k) = %q, want new", v)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, testOptions())
	defer s2.Close()
	if v, ok := s2.Get([]byte("k")); !ok || string(v) != "new" {
		t.Fatalf("reopened Get(k) = %q, want new", v)
	}
}

func TestAutoFlushAtThreshold(t *testing.T) {
	opts := testOptions()
	opts.FlushBytes = 256
	s := openTest(t, t.TempDir(), opts)
	defer s.Close()
	for i := 0; i < 64; i++ {
		mustAppend(t, s, fmt.Sprintf("key-%04d", i), "0123456789abcdef")
	}
	if got := s.Stats().Segments; got == 0 {
		t.Error("no segment produced despite exceeding FlushBytes")
	}
	sn := s.Snapshot()
	defer sn.Release()
	if n := sn.Len(); n != 64 {
		t.Errorf("visible keys = %d, want 64", n)
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.CompactAtSegments = 3
	s := openTest(t, dir, opts)

	for round := 0; round < 5; round++ {
		for i := 0; i < 20; i++ {
			mustAppend(t, s, fmt.Sprintf("r%d-k%02d", round, i), "v")
		}
		mustAppend(t, s, "shared", fmt.Sprintf("round%d", round))
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil { // waits for background merges
		t.Fatal(err)
	}

	s2 := openTest(t, dir, opts)
	defer s2.Close()
	if got := s2.Stats().Segments; got >= 5 {
		t.Errorf("segments after compaction = %d, want < 5", got)
	}
	sn := s2.Snapshot()
	defer sn.Release()
	if n := sn.Len(); n != 101 {
		t.Errorf("keys after compaction = %d, want 101", n)
	}
	if v, ok := sn.Get([]byte("shared")); !ok || string(v) != "round4" {
		t.Errorf("Get(shared) = %q, want round4 (newest wins)", v)
	}

	// Compaction must not leak retired files.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segFiles := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".seg" {
			segFiles++
		}
	}
	if segFiles != s2.Stats().Segments {
		t.Errorf("%d segment files on disk, manifest has %d", segFiles, s2.Stats().Segments)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := openTest(t, t.TempDir(), testOptions())
	defer s.Close()
	mustAppend(t, s, "a", "1")
	mustAppend(t, s, "b", "2")

	sn := s.Snapshot()
	defer sn.Release()

	mustAppend(t, s, "c", "3")
	mustAppend(t, s, "a", "overwritten")
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	keys, vals := collect(sn)
	if fmt.Sprint(keys) != "[a b]" || fmt.Sprint(vals) != "[1 2]" {
		t.Errorf("snapshot saw later writes: %v/%v", keys, vals)
	}

	sn2 := s.Snapshot()
	defer sn2.Release()
	if n := sn2.Len(); n != 3 {
		t.Errorf("fresh snapshot has %d keys, want 3", n)
	}
}

// TestSnapshotSurvivesCompaction pins the refcounting contract: a
// snapshot keeps reading the segment files it started with even after a
// compaction retires them, and the files are deleted only on release.
func TestSnapshotSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.CompactAtSegments = 0 // manual control below
	s := openTest(t, dir, opts)
	defer s.Close()

	for round := 0; round < 4; round++ {
		for i := 0; i < 10; i++ {
			mustAppend(t, s, fmt.Sprintf("r%d-k%02d", round, i), "v")
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	sn := s.Snapshot()

	// Force a merge of everything.
	s.opts.CompactAtSegments = 2
	s.maybeCompact()
	s.bg.Wait()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Segments; got != 1 {
		t.Fatalf("segments after forced compaction = %d, want 1", got)
	}

	// The snapshot still reads its original four segments.
	if n := sn.Len(); n != 40 {
		t.Errorf("snapshot sees %d keys after compaction, want 40", n)
	}
	for _, seg := range sn.segs {
		if _, err := os.Stat(seg.path); err != nil {
			t.Errorf("segment file %s vanished under a live snapshot: %v", seg.path, err)
		}
	}
	retired := append([]*segment(nil), sn.segs...)
	sn.Release()
	for _, seg := range retired {
		if _, err := os.Stat(seg.path); !os.IsNotExist(err) {
			t.Errorf("retired segment %s not deleted after release (err=%v)", seg.path, err)
		}
	}
}

// TestCrashRecoveryTornTail simulates a crash mid-append: the WAL tail is
// truncated at every possible byte boundary of the final frame. Reopen
// must recover every record before the tear, error-free, with nothing
// past it.
func TestCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	for i := 0; i < 10; i++ {
		mustAppend(t, s, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
	}
	// Simulated kill: abandon the store without Close (the WAL file holds
	// everything; Close would flush it into a segment).
	walFile := walPath(dir, 0)
	full, err := os.ReadFile(walFile)
	if err != nil {
		t.Fatal(err)
	}
	recs, valid := decodeFrames(full)
	if len(recs) != 10 || valid != len(full) {
		t.Fatalf("setup: wal has %d records, valid=%d/%d", len(recs), valid, len(full))
	}
	lastStart := 0
	for i := 0; i < 9; i++ {
		payloadLen := int(uint32(full[lastStart]) | uint32(full[lastStart+1])<<8 |
			uint32(full[lastStart+2])<<16 | uint32(full[lastStart+3])<<24)
		lastStart += frameHeaderSize + payloadLen
	}

	for cut := lastStart + 1; cut < len(full); cut++ {
		crash := t.TempDir()
		if err := os.WriteFile(walPath(crash, 0), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rs, err := Open(crash, testOptions())
		if err != nil {
			t.Fatalf("cut=%d: reopen failed: %v", cut, err)
		}
		sn := rs.Snapshot()
		keys, _ := collect(sn)
		sn.Release()
		if len(keys) != 9 {
			t.Fatalf("cut=%d: recovered %d records, want 9 (%v)", cut, len(keys), keys)
		}
		for i, k := range keys {
			if k != fmt.Sprintf("k%02d", i) {
				t.Fatalf("cut=%d: key %d = %q", cut, i, k)
			}
		}
		// The torn tail must be gone from disk after recovery.
		buf, err := os.ReadFile(walPath(crash, 0))
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != lastStart {
			t.Fatalf("cut=%d: wal not truncated to last complete frame: %d != %d",
				cut, len(buf), lastStart)
		}
		rs.Close()
	}
}

// TestCrashRecoveryBitFlip corrupts one byte inside a middle frame: the
// records before it recover, everything from the flip on is discarded.
func TestCrashRecoveryBitFlip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	for i := 0; i < 10; i++ {
		mustAppend(t, s, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
	}
	walFile := walPath(dir, 0)
	full, err := os.ReadFile(walFile)
	if err != nil {
		t.Fatal(err)
	}
	frameLen := len(full) / 10

	for _, frame := range []int{0, 4, 9} {
		crash := t.TempDir()
		cp := append([]byte(nil), full...)
		cp[frame*frameLen+frameHeaderSize+1] ^= 0x40 // flip a payload bit
		if err := os.WriteFile(walPath(crash, 0), cp, 0o644); err != nil {
			t.Fatal(err)
		}
		rs, err := Open(crash, testOptions())
		if err != nil {
			t.Fatalf("frame=%d: reopen failed: %v", frame, err)
		}
		sn := rs.Snapshot()
		keys, _ := collect(sn)
		sn.Release()
		if len(keys) != frame {
			t.Fatalf("frame=%d: recovered %d records, want %d", frame, len(keys), frame)
		}
		for _, k := range keys {
			var n int
			fmt.Sscanf(k, "k%02d", &n)
			if n >= frame {
				t.Fatalf("frame=%d: recovered data past the corruption: %q", frame, k)
			}
		}
		rs.Close()
	}
}

// TestCrashBetweenSegmentAndManifest simulates dying after a segment file
// lands but before the manifest names it: the file is an orphan, the old
// WAL still holds every record, and reopen recovers all of them.
func TestCrashBetweenSegmentAndManifest(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	mustAppend(t, s, "a", "1")
	mustAppend(t, s, "b", "2")

	// Hand-write an orphan segment, as if flush crashed pre-publish.
	if _, err := writeSegment(dir, 7, []entry{{key: []byte("a"), value: []byte("1")}}); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, testOptions())
	defer s2.Close()
	if _, err := os.Stat(segmentPath(dir, 7)); !os.IsNotExist(err) {
		t.Error("orphan segment not removed on open")
	}
	sn := s2.Snapshot()
	defer sn.Release()
	if n := sn.Len(); n != 2 {
		t.Errorf("recovered %d keys, want 2", n)
	}
}

func TestScanPrefix(t *testing.T) {
	s := openTest(t, t.TempDir(), testOptions())
	defer s.Close()
	for _, k := range []string{"a/1", "a/2", "b/1", "b/2", "c/1"} {
		mustAppend(t, s, k, "v")
	}
	sn := s.Snapshot()
	defer sn.Release()
	var got []string
	sn.ScanPrefix([]byte("b/"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if fmt.Sprint(got) != "[b/1 b/2]" {
		t.Errorf("ScanPrefix(b/) = %v, want [b/1 b/2]", got)
	}
}

func TestConcurrentAppendAndSnapshot(t *testing.T) {
	opts := testOptions()
	opts.FlushBytes = 2048 // force flushes mid-run
	opts.CompactAtSegments = 3
	s := openTest(t, t.TempDir(), opts)

	const writers, per = 4, 100
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("g%d-%04d", g, i)
				if err := s.Append([]byte(key), bytes.Repeat([]byte("x"), 16)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	// Concurrent readers: each snapshot must be internally consistent
	// (sorted, no duplicate keys).
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				sn := s.Snapshot()
				var prev []byte
				sn.Scan(func(k, v []byte) bool {
					if prev != nil && bytes.Compare(prev, k) >= 0 {
						t.Errorf("scan out of order: %q then %q", prev, k)
						return false
					}
					prev = append(prev[:0], k...)
					return true
				})
				sn.Release()
			}
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	s := openTest(t, t.TempDir(), testOptions())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("k"), []byte("v")); err == nil {
		t.Error("append after close did not error")
	}
	if err := s.Close(); err != nil {
		t.Errorf("second close errored: %v", err)
	}
}

func TestStatsAndDir(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testOptions())
	defer s.Close()
	if s.Dir() != dir {
		t.Errorf("Dir = %q, want %q", s.Dir(), dir)
	}
	mustAppend(t, s, "k", "v")
	st := s.Stats()
	if st.MemtableKeys != 1 || st.MemtableBytes == 0 || st.Segments != 0 {
		t.Errorf("Stats = %+v", st)
	}
}
