// Replication: the store's durable state is a deterministic function of
// the ordered stream of its durable transitions, so replicating it needs
// nothing beyond shipping that stream. A leader opened with
// Options.Replicate emits one ReplicationEvent per transition — a
// committed WAL batch, a flush publish, a compaction install — in commit
// order. A follower opened with OpenReplica applies them through
// ApplyEvent and converges to a byte-identical directory: WAL batches
// land at the same offsets, flushes cut segments at the same record
// boundary (sortedEntries is deterministic), compactions merge the same
// inputs, and manifests serialise with the same ids because flush and
// compact events carry the leader's published NextSegID.
//
// Apply is idempotent: a re-delivered batch is skipped by position, a
// re-delivered flush by generation, a re-delivered compaction by segment
// id. That makes a lazily persisted resume cursor (internal/cluster's
// REPLSEQ) safe — replaying from a stale cursor re-applies no-ops.

package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ErrReplica is returned by mutating operations (Append, Flush) on a
// store opened with OpenReplica.
var ErrReplica = errors.New("store: replica is read-only")

// ErrReplicaDiverged is returned by ApplyEvent when an event cannot
// follow the replica's current state — a generation or position gap that
// skipping or re-applying cannot explain. The replica's history is no
// longer a prefix of the leader's; it must resync from a snapshot
// (ExportFiles / ImportFiles).
var ErrReplicaDiverged = errors.New("store: replica diverged from leader")

// errReplicaGap marks a WAL batch arriving past the durable tail; it is
// wrapped into ErrReplicaDiverged by applyFrames.
var errReplicaGap = errors.New("store: replicated batch past wal tail")

// ReplKind enumerates the durable state transitions a leader ships.
type ReplKind uint8

const (
	// ReplFrames carries one durably committed WAL batch.
	ReplFrames ReplKind = iota + 1
	// ReplFlush announces a memtable flush: segment SegID was published
	// and the WAL rotated to generation NewGen.
	ReplFlush
	// ReplCompact announces a compaction: the oldest Inputs live
	// segments were merged into segment SegID.
	ReplCompact
)

// String names the kind for logs and span attributes.
func (k ReplKind) String() string {
	switch k {
	case ReplFrames:
		return "frames"
	case ReplFlush:
		return "flush"
	case ReplCompact:
		return "compact"
	}
	return fmt.Sprintf("replkind(%d)", uint8(k))
}

// ReplicationEvent is one durable state transition, as observed by
// Options.Replicate on a leader and applied by ApplyEvent on a replica.
// Which fields are meaningful depends on Kind.
type ReplicationEvent struct {
	Kind ReplKind

	// ReplFrames: the batch bytes (exact committed encoding, owned by
	// the event), the WAL generation they belong to, and the file offset
	// they landed at.
	Gen    uint64
	WalPos uint64
	Frames []byte

	// ReplFlush: the published segment id and the new WAL generation.
	// ReplCompact: the merged output segment id and the count of oldest
	// live segments it replaced.
	SegID  uint64
	Inputs int

	// ReplFlush only: the WAL generation the leader rotated to.
	NewGen uint64

	// ReplFlush and ReplCompact: the NextSegID the leader's manifest
	// published with this transition. Replicas adopt it verbatim so both
	// manifests serialise byte-identically even when flushes and
	// background compactions interleave id allocation on the leader.
	NextSegID uint64
}

// emit hands one event to the Replicate hook, if any. Callers hold the
// lock that orders the transition (wal leadership for frames, s.mu for
// flush/compact publishes), so observers see events in commit order.
func (s *Store) emit(ev ReplicationEvent) {
	if s.opts.Replicate != nil {
		s.opts.Replicate(ev)
	}
}

// walHook adapts the Replicate hook to the WAL's onCommit callback,
// copying the batch because the WAL recycles its buffer.
func (s *Store) walHook() func(gen, pos uint64, batch []byte) {
	if s.opts.Replicate == nil {
		return nil
	}
	return func(gen, pos uint64, batch []byte) {
		s.emit(ReplicationEvent{Kind: ReplFrames, Gen: gen, WalPos: pos,
			Frames: append([]byte(nil), batch...)})
	}
}

// OpenReplica opens dir as a read-only replica of a leader store. The
// replica serves Get/Snapshot/Scan but mutates only through ApplyEvent;
// Append and Flush fail with ErrReplica, it never self-compacts, and
// Close does not flush (a flush would mint ids the leader never
// published and diverge the directories). Reopening replays the shipped
// WAL through the ordinary recovery path.
func OpenReplica(dir string, opts Options) (*Store, error) {
	opts.Replicate = nil       // replicas never re-ship
	opts.CompactAtSegments = 0 // compaction is driven by leader events
	opts.Injector = nil        // fault sites are leader-side
	s, err := Open(dir, opts)
	if err != nil {
		return nil, err
	}
	s.replica = true
	return s, nil
}

// ApplyEvent applies one leader transition to a replica, in stream
// order. Re-delivered events are skipped (see package comment); an event
// that cannot follow the current state returns ErrReplicaDiverged and
// the caller must resync from a snapshot.
func (s *Store) ApplyEvent(ev ReplicationEvent) error {
	if !s.replica {
		return errors.New("store: ApplyEvent on non-replica store")
	}
	switch ev.Kind {
	case ReplFrames:
		return s.applyFrames(ev)
	case ReplFlush:
		return s.applyFlush(ev)
	case ReplCompact:
		return s.applyCompact(ev)
	}
	return fmt.Errorf("store: unknown replication event kind %d", ev.Kind)
}

// applyFrames mirrors one committed WAL batch: bytes to the log at the
// leader's offset, records to the memtable. A batch from a generation
// the replica has already rotated past was subsumed by that flush.
func (s *Store) applyFrames(ev ReplicationEvent) error {
	recs, valid := decodeFrames(ev.Frames)
	if valid != len(ev.Frames) {
		return fmt.Errorf("store: corrupt replicated batch (valid %d of %d bytes): %w",
			valid, len(ev.Frames), ErrReplicaDiverged)
	}
	s.rot.RLock()
	defer s.rot.RUnlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("store: closed")
	}
	w := s.wal
	curGen := s.man.WALGen
	s.mu.Unlock()
	if ev.Gen != curGen {
		if ev.Gen < curGen {
			return nil // re-delivery from before a flush already applied
		}
		return fmt.Errorf("store: batch for wal gen %d but replica at %d: %w",
			ev.Gen, curGen, ErrReplicaDiverged)
	}
	applied, err := w.applyReplicated(ev.WalPos, ev.Frames)
	if errors.Is(err, errReplicaGap) {
		return fmt.Errorf("store: %v: %w", err, ErrReplicaDiverged)
	}
	if err != nil || !applied {
		return err
	}
	s.mu.Lock()
	for _, r := range recs {
		s.memInsert(r.key, r.value)
	}
	s.met.walAppends.Add(uint64(len(recs)))
	s.mu.Unlock()
	return nil
}

// applyFlush mirrors a leader flush: same segment id, same record
// boundary, same manifest. The leader's NextSegID is adopted first so
// flushAs publishes an identical manifest.
func (s *Store) applyFlush(ev ReplicationEvent) error {
	s.rot.Lock()
	defer s.rot.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("store: closed")
	}
	if ev.NewGen <= s.man.WALGen {
		s.mu.Unlock()
		return nil // re-delivery: this rotation already happened
	}
	if ev.NewGen != s.man.WALGen+1 {
		gen := s.man.WALGen
		s.mu.Unlock()
		return fmt.Errorf("store: flush to gen %d but replica at %d: %w",
			ev.NewGen, gen, ErrReplicaDiverged)
	}
	s.nextSeg = ev.NextSegID
	s.mu.Unlock()
	return s.flushAs(ev.SegID, ev.NewGen, false)
}

// applyCompact mirrors a leader compaction by merging the replica's own
// oldest Inputs segments. Event order guarantees those are byte-identical
// to the leader's merge inputs, and mergeSegments is deterministic, so
// the output segment matches byte for byte.
func (s *Store) applyCompact(ev ReplicationEvent) error {
	s.rot.Lock()
	defer s.rot.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("store: closed")
	}
	// Published NextSegID is strictly monotonic across flush and compact
	// installs (each allocates at least one id first), so an event at or
	// below the replica's manifest is a re-delivery — even if a later
	// compaction has since consumed this one's output segment.
	if ev.NextSegID <= s.man.NextSegID {
		s.mu.Unlock()
		return nil
	}
	if ev.Inputs <= 0 || ev.Inputs > len(s.segs) {
		n := len(s.segs)
		s.mu.Unlock()
		return fmt.Errorf("store: compaction of %d segments but replica has %d: %w",
			ev.Inputs, n, ErrReplicaDiverged)
	}
	merge := make([]*segment, ev.Inputs)
	copy(merge, s.segs[:ev.Inputs])
	for _, sg := range merge {
		sg.acquire()
	}
	s.nextSeg = ev.NextSegID
	s.mu.Unlock()

	merged := mergeSegments(merge)
	for _, sg := range merge {
		sg.release()
	}
	if _, err := writeSegment(s.dir, ev.SegID, merged); err != nil {
		return err
	}
	seg, err := openSegment(s.dir, ev.SegID)
	if err != nil {
		return err
	}

	s.mu.Lock()
	man := s.man
	man.NextSegID = ev.NextSegID
	man.Segments = append([]uint64{ev.SegID}, man.Segments[ev.Inputs:]...)
	if err := saveManifest(s.dir, man); err != nil {
		s.mu.Unlock()
		_ = os.Remove(seg.path)
		return err
	}
	old := make([]*segment, ev.Inputs)
	copy(old, s.segs[:ev.Inputs])
	s.man = man
	s.segs = append([]*segment{seg}, s.segs[ev.Inputs:]...)
	s.met.compactions.Inc()
	s.met.segsLive.Set(float64(len(s.segs)))
	s.mu.Unlock()

	for _, sg := range old {
		sg.markDead()
	}
	return nil
}

// Position reports the replica-relevant durable position: the current
// WAL generation and the number of durable bytes in it.
func (s *Store) Position() (gen, pos uint64) {
	s.rot.RLock()
	defer s.rot.RUnlock()
	s.mu.Lock()
	w := s.wal
	gen = s.man.WALGen
	s.mu.Unlock()
	w.mu.Lock()
	pos = w.size
	w.mu.Unlock()
	return gen, pos
}

// SnapshotFile is one file of a replication snapshot: a byte-exact copy
// of a store file, named relative to the store directory.
type SnapshotFile struct {
	Name string
	Data []byte
}

// ExportFiles captures a byte-exact copy of the store's durable state —
// manifest, live segments, current WAL — with both store locks held so
// no commit, flush, or compaction can interleave. mark, if non-nil, is
// invoked at the capture point, still under the locks: a replication
// shipper uses it to record the event-stream position the snapshot
// corresponds to, atomically with the capture (no event can be emitted
// while the locks are held). mark must not call back into the store.
func (s *Store) ExportFiles(mark func()) ([]SnapshotFile, error) {
	s.rot.Lock()
	defer s.rot.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("store: closed")
	}
	if mark != nil {
		mark()
	}
	var files []SnapshotFile
	read := func(path string) error {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("store: snapshot read: %w", err)
		}
		files = append(files, SnapshotFile{Name: filepath.Base(path), Data: data})
		return nil
	}
	for _, id := range s.man.Segments {
		if err := read(segmentPath(s.dir, id)); err != nil {
			return nil, err
		}
	}
	if err := read(walPath(s.dir, s.man.WALGen)); err != nil {
		return nil, err
	}
	// Manifest last, mirroring write order: data files before the file
	// that names them. A store that has never flushed has no manifest on
	// disk yet; synthesize the zero catalog with the same encoding
	// saveManifest uses so the importer's bytes match a real one.
	buf, err := os.ReadFile(manifestPath(s.dir))
	if os.IsNotExist(err) {
		if buf, err = json.Marshal(s.man); err != nil {
			return nil, fmt.Errorf("store: encoding manifest: %w", err)
		}
	} else if err != nil {
		return nil, fmt.Errorf("store: snapshot read: %w", err)
	}
	files = append(files, SnapshotFile{Name: manifestName, Data: buf})
	return files, nil
}

// ImportFiles replaces the store files in dir with a snapshot captured
// by ExportFiles. The target store must be closed. Existing store files
// (segments, WALs, manifest, temp files) are removed first; snapshot
// data files are written durably before the manifest that names them, so
// a crash mid-import leaves either the old manifest with orphan new
// files or the new manifest fully backed — both recover cleanly, and the
// importer's resume cursor is only advanced after a successful reopen.
func ImportFiles(dir string, files []SnapshotFile) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: creating dir: %w", err)
	}
	var manifest *SnapshotFile
	for i := range files {
		f := &files[i]
		if f.Name != filepath.Base(f.Name) || f.Name == "" || f.Name == "." {
			return fmt.Errorf("store: snapshot file name %q is not a bare name", f.Name)
		}
		if f.Name == manifestName {
			manifest = f
		}
	}
	if manifest == nil {
		return errors.New("store: snapshot has no manifest")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: listing dir: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if name == manifestName || strings.HasPrefix(name, "seg-") ||
			strings.HasPrefix(name, "wal-") || strings.HasSuffix(name, ".tmp") {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("store: clearing %s: %w", name, err)
			}
		}
	}
	for i := range files {
		f := &files[i]
		if f.Name == manifestName {
			continue
		}
		if err := writeFileSync(filepath.Join(dir, f.Name), f.Data); err != nil {
			return fmt.Errorf("store: importing %s: %w", f.Name, err)
		}
	}
	if err := writeFileSync(filepath.Join(dir, manifestName), manifest.Data); err != nil {
		return fmt.Errorf("store: importing manifest: %w", err)
	}
	return syncDir(dir)
}
