package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
)

// segMagic is the segment file header. Bumping the trailing digits
// versions the on-disk format.
var segMagic = []byte("FLSEG001")

// entry is one key/value pair owned by the engine (never aliasing caller
// or file-read buffers that may be recycled).
type entry struct {
	key   []byte
	value []byte
}

// segment is one immutable, sorted on-disk run. Readers hold references;
// the file is deleted only when it has been dropped from the manifest
// (dead) and the last reference is released, so snapshots opened before a
// compaction keep reading the exact files they started with.
type segment struct {
	id      uint64
	path    string
	entries []entry // ascending, unique keys

	refs atomic.Int32
	dead atomic.Bool
}

func (s *segment) acquire() { s.refs.Add(1) }

// release drops one reference, removing the file once the segment is both
// dead and unreferenced. Removal errors are ignored: a leftover file is
// re-collected as an orphan on the next Open.
func (s *segment) release() {
	if s.refs.Add(-1) == 0 && s.dead.Load() {
		_ = os.Remove(s.path)
	}
}

// markDead flags the segment as dropped from the manifest and releases
// the store's own reference.
func (s *segment) markDead() {
	s.dead.Store(true)
	s.release()
}

func segmentPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%06d.seg", id))
}

// writeSegment persists sorted entries as segment id under dir, fsyncing
// the file and the directory before the atomic rename publishes it.
func writeSegment(dir string, id uint64, entries []entry) (string, error) {
	path := segmentPath(dir, id)
	tmp := path + ".tmp"
	buf := make([]byte, 0, len(segMagic)+segmentSize(entries))
	buf = append(buf, segMagic...)
	for _, e := range entries {
		buf = appendFrame(buf, e.key, e.value)
	}
	if err := writeFileSync(tmp, buf); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", fmt.Errorf("store: publishing segment: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return path, nil
}

// segmentSize is the framed byte size of a run of entries.
func segmentSize(entries []entry) int {
	n := 0
	for _, e := range entries {
		n += frameHeaderSize + 2 + len(e.key) + len(e.value) // ~2 varint bytes
	}
	return n
}

// openSegment loads a segment file fully into memory. Segments hold the
// profiler's numeric history and stay small (the memtable flush threshold
// bounds them); trading residency for zero read syscalls keeps scans
// allocation-free.
func openSegment(dir string, id uint64) (*segment, error) {
	path := segmentPath(dir, id)
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: reading segment: %w", err)
	}
	if !bytes.HasPrefix(buf, segMagic) {
		return nil, fmt.Errorf("store: segment %s: bad magic", path)
	}
	body := buf[len(segMagic):]
	recs, valid := decodeFrames(body)
	if valid != len(body) {
		return nil, fmt.Errorf("store: segment %s: corrupt frame at offset %d", path, len(segMagic)+valid)
	}
	entries := make([]entry, len(recs))
	for i, r := range recs {
		entries[i] = entry{key: r.key, value: r.value}
		if i > 0 && bytes.Compare(entries[i-1].key, r.key) >= 0 {
			return nil, fmt.Errorf("store: segment %s: keys out of order at record %d", path, i)
		}
	}
	seg := &segment{id: id, path: path, entries: entries}
	seg.refs.Store(1) // the store's own reference
	return seg, nil
}

// get returns the value for key, if present.
func (s *segment) get(key []byte) ([]byte, bool) {
	i := sort.Search(len(s.entries), func(i int) bool {
		return bytes.Compare(s.entries[i].key, key) >= 0
	})
	if i < len(s.entries) && bytes.Equal(s.entries[i].key, key) {
		return s.entries[i].value, true
	}
	return nil, false
}

// writeFileSync writes buf to path and fsyncs it.
func writeFileSync(path string, buf []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", path, err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: syncing dir: %w", err)
	}
	return nil
}
