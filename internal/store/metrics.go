package store

import "flare/internal/obs"

// storeMetrics bundles the engine's flare_store_* instruments so hot
// paths hold direct handles instead of re-resolving registry names.
type storeMetrics struct {
	walAppends *obs.Counter   // records appended to the WAL
	walBatches *obs.Counter   // group-commit batches written
	walBytes   *obs.Counter   // bytes written to the WAL
	walFsync   *obs.Histogram // WAL fsync latency (seconds)

	flushes     *obs.Counter // memtable flushes
	compactions *obs.Counter // segment merges
	tornTails   *obs.Counter // torn WAL tails truncated during recovery
	recovered   *obs.Counter // records replayed from the WAL on open
	segsLive    *obs.Gauge   // live segments in the manifest
}

func newStoreMetrics(reg *obs.Registry) *storeMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &storeMetrics{
		walAppends: reg.Counter("flare_store_wal_appends_total",
			"records appended to the store's write-ahead log"),
		walBatches: reg.Counter("flare_store_wal_commit_batches_total",
			"group-commit batches written to the WAL (one write+fsync each)"),
		walBytes: reg.Counter("flare_store_wal_bytes_total",
			"bytes written to the WAL"),
		walFsync: reg.Histogram("flare_store_wal_fsync_seconds",
			"WAL fsync latency", nil),
		flushes: reg.Counter("flare_store_flushes_total",
			"memtable flushes to segment files"),
		compactions: reg.Counter("flare_store_compactions_total",
			"segment compactions (merges)"),
		tornTails: reg.Counter("flare_store_torn_tails_total",
			"torn WAL tails truncated during recovery"),
		recovered: reg.Counter("flare_store_recovered_records_total",
			"records replayed from the WAL during recovery"),
		segsLive: reg.Gauge("flare_store_segments_live",
			"live segment files in the manifest"),
	}
}
