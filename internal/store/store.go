package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"flare/internal/fault"
	"flare/internal/obs"
)

// Options tunes a store. The zero value is usable: defaults are filled in
// by Open.
type Options struct {
	// FlushBytes is the memtable size that triggers a flush to a segment
	// file. Default 4 MiB.
	FlushBytes int
	// SyncWrites fsyncs every WAL commit batch. Default true via
	// DefaultOptions; turning it off trades the last batch on power loss
	// for append throughput (process crashes still lose nothing — the OS
	// holds the written bytes).
	SyncWrites bool
	// CompactAtSegments merges all live segments into one when the live
	// count reaches this threshold; <= 0 disables compaction. Default 4.
	CompactAtSegments int
	// Registry receives the flare_store_* telemetry; nil means the
	// process-default registry.
	Registry *obs.Registry
	// Injector, when non-nil, arms deterministic fault injection on the
	// store's durability paths. Sites: "store.wal.append" (appends fail
	// or slow down before reaching the log), "store.flush.segment"
	// (segment write fails cleanly), "store.flush.publish" (crash point
	// between the segment write and the manifest publish — the orphan-
	// segment window), and "store.compact.write" (background compaction
	// fails). See internal/fault.
	Injector *fault.Injector
	// Replicate, when non-nil, observes every durable state transition
	// (committed WAL batch, flush publish, compaction install) as a
	// ReplicationEvent, in commit order. WAL-shipping replication hangs
	// off this hook; see replica.go. The callback runs on the committing
	// goroutine while store locks are held, so it must be fast and must
	// never call back into the store.
	Replicate func(ReplicationEvent)
}

// DefaultOptions returns durable defaults.
func DefaultOptions() Options {
	return Options{FlushBytes: 4 << 20, SyncWrites: true, CompactAtSegments: 4}
}

// Store is an embedded, crash-safe key/value store with sorted snapshot
// scans. Keys are unique (last write wins) and returned in ascending byte
// order. Safe for concurrent use.
type Store struct {
	dir  string
	opts Options
	met  *storeMetrics

	// inj is swappable at runtime (SetInjector) so tests and operators
	// can start an outage against an already-open store.
	inj atomic.Pointer[fault.Injector]

	// rot serialises WAL rotation with appends: every Append holds it for
	// read across (WAL append, memtable insert), so Flush — holding it for
	// write — observes a memtable that exactly matches the WAL generation
	// it retires.
	rot sync.RWMutex

	// mu guards the mutable catalog: memtable, live segments, manifest.
	mu       sync.Mutex
	wal      *wal
	mem      map[string][]byte
	memBytes int
	segs     []*segment // oldest first
	man      manifestState
	nextSeg  uint64 // in-memory segment-id allocator (>= man.NextSegID)

	compacting bool
	closed     bool
	bg         sync.WaitGroup
	bgErr      error // sticky background (compaction) failure

	// replica marks a store opened with OpenReplica: it mutates only
	// through Apply* (driven by a leader's replication events), rejects
	// Append/Flush, never self-compacts, and does not flush on Close —
	// its on-disk state must stay a byte-exact prefix of the leader's.
	replica bool
}

// Open opens (creating if needed) the store in dir, replaying the current
// WAL generation into the memtable. A torn WAL tail — the signature of a
// crash mid-append — is truncated to the last complete record. Orphan
// segment and WAL files not named by the manifest (crash between a file
// write and its manifest publish) are deleted.
func Open(dir string, opts Options) (*Store, error) {
	if opts.FlushBytes <= 0 {
		opts.FlushBytes = DefaultOptions().FlushBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating dir: %w", err)
	}
	man, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	met := newStoreMetrics(opts.Registry)

	s := &Store{dir: dir, opts: opts, met: met, man: man,
		nextSeg: man.NextSegID, mem: make(map[string][]byte)}
	s.inj.Store(opts.Injector)
	for _, id := range man.Segments {
		seg, err := openSegment(dir, id)
		if err != nil {
			return nil, err
		}
		s.segs = append(s.segs, seg)
	}
	if err := s.removeOrphans(); err != nil {
		return nil, err
	}
	f, size, err := s.recoverWAL()
	if err != nil {
		return nil, err
	}
	s.wal = newWAL(f, man.WALGen, size, opts.SyncWrites, met, s.walHook())
	met.segsLive.Set(float64(len(s.segs)))
	return s, nil
}

// recoverWAL replays wal-<gen>.log into the memtable, truncating a torn
// tail, and returns the file positioned for appends together with the
// valid (durable) byte length.
func (s *Store) recoverWAL() (*os.File, uint64, error) {
	path := walPath(s.dir, s.man.WALGen)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("store: opening wal: %w", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("store: reading wal: %w", err)
	}
	recs, valid := decodeFrames(buf)
	for _, r := range recs {
		s.memInsert(r.key, r.value)
	}
	s.met.recovered.Add(uint64(len(recs)))
	if valid < len(buf) {
		// Torn or corrupt tail: keep every complete record, drop the rest.
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("store: truncating torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("store: syncing truncated wal: %w", err)
		}
		s.met.tornTails.Inc()
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("store: seeking wal: %w", err)
	}
	return f, uint64(valid), nil
}

// removeOrphans deletes segment and WAL files the manifest does not name.
func (s *Store) removeOrphans() error {
	live := make(map[string]bool, len(s.man.Segments)+1)
	for _, id := range s.man.Segments {
		live[filepath.Base(segmentPath(s.dir, id))] = true
	}
	live[filepath.Base(walPath(s.dir, s.man.WALGen))] = true
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: listing dir: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		orphan := (strings.HasPrefix(name, "seg-") || strings.HasPrefix(name, "wal-") ||
			strings.HasSuffix(name, ".tmp")) && !live[name]
		if orphan {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return fmt.Errorf("store: removing orphan %s: %w", name, err)
			}
		}
	}
	return nil
}

// memInsert stores one pair in the memtable (caller holds mu or is
// single-threaded recovery). Slices are copied; last write wins.
func (s *Store) memInsert(key, value []byte) {
	k := string(key)
	if old, ok := s.mem[k]; ok {
		s.memBytes -= len(k) + len(old)
	}
	s.mem[k] = append([]byte(nil), value...)
	s.memBytes += len(k) + len(value)
}

// SetInjector replaces the store's fault injector (nil disables
// injection). Safe to call while the store is serving; in-flight
// operations may still observe the previous injector.
func (s *Store) SetInjector(in *fault.Injector) { s.inj.Store(in) }

// injector returns the current fault injector (possibly nil; all
// injector methods are nil-safe).
func (s *Store) injector() *fault.Injector { return s.inj.Load() }

// Append durably writes one key/value pair: the record is on disk (in the
// WAL) before Append returns. Concurrent appenders share fsyncs via group
// commit. An empty key is invalid; a repeated key overwrites (last write
// wins).
func (s *Store) Append(key, value []byte) error {
	if len(key) == 0 {
		return errors.New("store: empty key")
	}
	if s.replica {
		return ErrReplica
	}
	// Fault site: a failed or slow disk write, surfaced before any lock
	// is held so injected latency does not serialise healthy appenders.
	if err := s.injector().Err("store.wal.append"); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	if len(key)+len(value)+frameHeaderSize > maxFrameSize {
		return fmt.Errorf("store: record for key %q exceeds %d bytes", key, maxFrameSize)
	}
	s.rot.RLock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.rot.RUnlock()
		return errors.New("store: closed")
	}
	w := s.wal
	s.mu.Unlock()

	frame := appendFrame(nil, key, value)
	if err := w.append(frame); err != nil {
		s.rot.RUnlock()
		return err
	}
	s.met.walAppends.Inc()

	s.mu.Lock()
	s.memInsert(key, value)
	needFlush := s.memBytes >= s.opts.FlushBytes
	s.mu.Unlock()
	s.rot.RUnlock()

	if needFlush {
		return s.Flush()
	}
	return nil
}

// Get returns the newest value for key (memtable first, then segments
// newest-to-oldest).
func (s *Store) Get(key []byte) ([]byte, bool) {
	sn := s.Snapshot()
	defer sn.Release()
	return sn.Get(key)
}

// Flush persists the memtable as a new segment, publishes it in the
// manifest together with a fresh WAL generation, and deletes the retired
// WAL. A crash at any point recovers cleanly: before the manifest publish
// the old WAL still holds every record (the new segment is an orphan);
// after it, the segment holds them (the old WAL is an orphan). An empty
// memtable is a no-op.
func (s *Store) Flush() error {
	if s.replica {
		return ErrReplica
	}
	s.rot.Lock()
	defer s.rot.Unlock()
	return s.flushLocked()
}

// flushLocked is Flush with s.rot already write-held: it allocates the
// segment and WAL-generation ids, runs the leader-only fault sites, and
// hands off to flushAs for the shared mechanics.
func (s *Store) flushLocked() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("store: closed")
	}
	if len(s.mem) == 0 {
		s.mu.Unlock()
		return nil
	}
	segID := s.nextSeg
	s.nextSeg++
	newGen := s.man.WALGen + 1
	s.mu.Unlock()

	// Fault site: the segment write fails before any bytes are
	// published; the memtable and WAL are untouched, so the flush can
	// simply be retried.
	if err := s.injector().Err("store.flush.segment"); err != nil {
		return fmt.Errorf("store: writing segment: %w", err)
	}
	if err := s.flushAs(segID, newGen, true); err != nil {
		return err
	}
	s.maybeCompact()
	return nil
}

// flushAs persists the memtable as segment segID and rotates the WAL to
// generation newGen — the core shared by a leader flush and a replica's
// ApplyFlush. The caller holds s.rot for write and has already allocated
// (leader) or validated (replica) the ids; on a replica s.nextSeg has
// been pre-set to the leader's published NextSegID so both manifests
// serialise byte-identically. Because rot excludes appenders and
// sortedEntries orders deterministically, identical memtable contents
// produce identical segment bytes on every node.
func (s *Store) flushAs(segID, newGen uint64, leader bool) error {
	s.mu.Lock()
	entries := sortedEntries(s.mem)
	s.mu.Unlock()

	if _, err := writeSegment(s.dir, segID, entries); err != nil {
		return err
	}
	seg, err := openSegment(s.dir, segID)
	if err != nil {
		return err
	}
	// Crash point: the segment file is durably on disk but the manifest
	// does not name it yet. Aborting here — deliberately with NO cleanup
	// — leaves exactly the orphan a real crash would: recovery must keep
	// serving from the WAL and delete the unpublished segment.
	if leader {
		if err := s.injector().Err("store.flush.publish"); err != nil {
			return fmt.Errorf("store: publishing flush: %w", err)
		}
	}

	// New WAL generation first: the manifest must never point at a WAL
	// that does not exist yet.
	nf, err := os.OpenFile(walPath(s.dir, newGen), os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating wal: %w", err)
	}

	s.mu.Lock()
	oldWAL := s.wal
	oldGen := s.man.WALGen
	man := s.man
	man.WALGen = newGen
	man.NextSegID = s.nextSeg
	man.Segments = append(append([]uint64(nil), man.Segments...), segID)
	if err := saveManifest(s.dir, man); err != nil {
		s.mu.Unlock()
		nf.Close()
		os.Remove(walPath(s.dir, newGen))
		os.Remove(seg.path)
		return err
	}
	s.man = man
	s.segs = append(s.segs, seg)
	s.wal = newWAL(nf, newGen, 0, s.opts.SyncWrites, s.met, s.walHook())
	s.mem = make(map[string][]byte)
	s.memBytes = 0
	s.met.flushes.Inc()
	s.met.segsLive.Set(float64(len(s.segs)))
	if leader {
		s.emit(ReplicationEvent{Kind: ReplFlush, SegID: segID,
			NewGen: newGen, NextSegID: man.NextSegID})
	}
	s.mu.Unlock()

	_ = oldWAL.close()
	_ = os.Remove(walPath(s.dir, oldGen))
	return nil
}

// sortedEntries snapshots a memtable as ascending entries.
func sortedEntries(mem map[string][]byte) []entry {
	entries := make([]entry, 0, len(mem))
	for k, v := range mem {
		entries = append(entries, entry{key: []byte(k), value: v})
	}
	sort.Slice(entries, func(i, j int) bool {
		return bytes.Compare(entries[i].key, entries[j].key) < 0
	})
	return entries
}

// maybeCompact starts a background merge of the current live segments
// when the count reaches the threshold.
func (s *Store) maybeCompact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replica || s.opts.CompactAtSegments <= 0 || s.compacting || s.closed ||
		len(s.segs) < s.opts.CompactAtSegments {
		return
	}
	s.compacting = true
	merge := make([]*segment, len(s.segs))
	copy(merge, s.segs) // current segments form a stable prefix of s.segs
	for _, seg := range merge {
		seg.acquire()
	}
	s.bg.Add(1)
	go s.compact(merge)
}

// compact merges segments (oldest first, newest value wins) into one new
// segment and installs it in the manifest in place of the inputs. On any
// failure — or if the store closed meanwhile — the merge output is
// abandoned; the store keeps serving from the old segments.
func (s *Store) compact(merge []*segment) {
	defer s.bg.Done()
	defer func() {
		for _, seg := range merge {
			seg.release()
		}
		s.mu.Lock()
		s.compacting = false
		s.mu.Unlock()
	}()

	merged := mergeSegments(merge)
	s.mu.Lock()
	segID := s.nextSeg
	s.nextSeg++
	s.mu.Unlock()
	// Fault site: background compaction failure. The store keeps serving
	// from the unmerged segments; the error is sticky via Err/Close.
	if err := s.injector().Err("store.compact.write"); err != nil {
		s.setBgErr(fmt.Errorf("store: compaction: %w", err))
		return
	}
	if _, err := writeSegment(s.dir, segID, merged); err != nil {
		s.setBgErr(err)
		return
	}
	seg, err := openSegment(s.dir, segID)
	if err != nil {
		s.setBgErr(err)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = os.Remove(seg.path)
		return
	}
	man := s.man
	man.NextSegID = s.nextSeg
	// The merged inputs are a prefix of the live list; anything flushed
	// during the merge stays, ordered after the merged output.
	man.Segments = append([]uint64{segID}, man.Segments[len(merge):]...)
	if err := saveManifest(s.dir, man); err != nil {
		s.mu.Unlock()
		_ = os.Remove(seg.path)
		s.setBgErr(err)
		return
	}
	old := s.segs[:len(merge)]
	s.man = man
	s.segs = append([]*segment{seg}, s.segs[len(merge):]...)
	s.met.compactions.Inc()
	s.met.segsLive.Set(float64(len(s.segs)))
	s.emit(ReplicationEvent{Kind: ReplCompact, SegID: segID,
		Inputs: len(merge), NextSegID: man.NextSegID})
	s.mu.Unlock()

	for _, seg := range old {
		seg.markDead()
	}
}

// mergeSegments k-way merges sorted runs, newest run winning duplicates.
func mergeSegments(segs []*segment) []entry {
	idx := make([]int, len(segs))
	var out []entry
	for {
		// Smallest key across runs; among ties the newest (highest index)
		// run supplies the value and every tied run advances.
		var best []byte
		for i, seg := range segs {
			if idx[i] >= len(seg.entries) {
				continue
			}
			k := seg.entries[idx[i]].key
			if best == nil || bytes.Compare(k, best) < 0 {
				best = k
			}
		}
		if best == nil {
			return out
		}
		var winner entry
		for i, seg := range segs {
			if idx[i] < len(seg.entries) && bytes.Equal(seg.entries[idx[i]].key, best) {
				winner = seg.entries[idx[i]]
				idx[i]++
			}
		}
		out = append(out, winner)
	}
}

// Snapshot is an immutable, point-in-time view: a sorted copy of the
// memtable plus references on the live segments. Scans over a snapshot
// never block writers and never observe later appends, flushes, or
// compactions. Release it when done so retired segment files can be
// deleted.
type Snapshot struct {
	mem      []entry // ascending
	segs     []*segment
	released atomic.Bool
}

// Snapshot captures the current contents.
func (s *Store) Snapshot() *Snapshot {
	s.mu.Lock()
	sn := &Snapshot{mem: sortedEntries(s.mem), segs: make([]*segment, len(s.segs))}
	copy(sn.segs, s.segs)
	for _, seg := range sn.segs {
		seg.acquire()
	}
	s.mu.Unlock()
	return sn
}

// Release drops the snapshot's segment references. Idempotent.
func (sn *Snapshot) Release() {
	if sn.released.Swap(true) {
		return
	}
	for _, seg := range sn.segs {
		seg.release()
	}
}

// Get returns the newest value for key within the snapshot.
func (sn *Snapshot) Get(key []byte) ([]byte, bool) {
	i := sort.Search(len(sn.mem), func(i int) bool {
		return bytes.Compare(sn.mem[i].key, key) >= 0
	})
	if i < len(sn.mem) && bytes.Equal(sn.mem[i].key, key) {
		return sn.mem[i].value, true
	}
	for j := len(sn.segs) - 1; j >= 0; j-- {
		if v, ok := sn.segs[j].get(key); ok {
			return v, true
		}
	}
	return nil, false
}

// Len returns the number of distinct keys visible in the snapshot.
func (sn *Snapshot) Len() int {
	n := 0
	sn.Scan(func([]byte, []byte) bool { n++; return true })
	return n
}

// Scan visits every key/value pair in ascending key order, newest value
// winning duplicates, until fn returns false. The slices passed to fn are
// only valid during the call.
func (sn *Snapshot) Scan(fn func(key, value []byte) bool) {
	// Runs, oldest to newest; the memtable is newest of all.
	runs := make([][]entry, 0, len(sn.segs)+1)
	for _, seg := range sn.segs {
		runs = append(runs, seg.entries)
	}
	runs = append(runs, sn.mem)
	idx := make([]int, len(runs))
	for {
		var best []byte
		for i, run := range runs {
			if idx[i] >= len(run) {
				continue
			}
			k := run[idx[i]].key
			if best == nil || bytes.Compare(k, best) < 0 {
				best = k
			}
		}
		if best == nil {
			return
		}
		var winner entry
		for i, run := range runs {
			if idx[i] < len(run) && bytes.Equal(run[idx[i]].key, best) {
				winner = run[idx[i]]
				idx[i]++
			}
		}
		if !fn(winner.key, winner.value) {
			return
		}
	}
}

// ScanPrefix visits pairs whose key begins with prefix, in ascending
// order.
func (sn *Snapshot) ScanPrefix(prefix []byte, fn func(key, value []byte) bool) {
	sn.Scan(func(k, v []byte) bool {
		if bytes.HasPrefix(k, prefix) {
			return fn(k, v)
		}
		// Keys are ascending: once past the prefix range, stop.
		return bytes.Compare(k, prefix) < 0
	})
}

// setBgErr records the first background failure.
func (s *Store) setBgErr(err error) {
	s.mu.Lock()
	if s.bgErr == nil {
		s.bgErr = err
	}
	s.mu.Unlock()
}

// Err surfaces a sticky background failure (compaction write or manifest
// publish). The store keeps serving from its previous state after such a
// failure; Close also reports it.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bgErr
}

// Close flushes the memtable to a segment, waits for background work, and
// closes the WAL. The store is unusable afterwards; reopening is cheap
// because a clean close leaves an empty WAL.
func (s *Store) Close() error {
	s.rot.Lock()
	defer s.rot.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	// A replica must not flush on close: doing so would mint a segment
	// and WAL generation the leader never published, diverging the two
	// directories. Its memtable is safely reconstructed from the WAL the
	// leader shipped.
	var flushErr error
	if !s.replica {
		flushErr = s.flushLocked()
	}

	s.mu.Lock()
	s.closed = true
	w := s.wal
	s.mu.Unlock()

	s.bg.Wait()
	closeErr := w.close()
	if flushErr != nil {
		return flushErr
	}
	if closeErr != nil {
		return closeErr
	}
	return s.Err()
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Stats describes the store's current shape.
type Stats struct {
	Segments      int   `json:"segments"`
	MemtableBytes int   `json:"memtable_bytes"`
	MemtableKeys  int   `json:"memtable_keys"`
	WALGeneration int64 `json:"wal_generation"`
}

// Stats reports the live catalog shape.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Segments:      len(s.segs),
		MemtableBytes: s.memBytes,
		MemtableKeys:  len(s.mem),
		WALGeneration: int64(s.man.WALGen),
	}
}
