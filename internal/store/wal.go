// Package store is FLARE's embedded storage engine: a dependency-free,
// crash-safe, append-heavy key/value store backing the metric database.
// The paper's Profiler records statistics continuously over a multi-day
// window (Sec 4.2); that history must survive process restarts, so the
// engine is built on the classic durable-log design:
//
//   - every append is framed (length + CRC32C) into a write-ahead log;
//     concurrent appenders share one fsync via leader-based group commit,
//   - an in-memory memtable absorbs writes and flushes to immutable,
//     sorted, length-prefixed segment files at a size threshold,
//   - a manifest names the live segments and the current WAL generation,
//     rewritten atomically (temp file + rename) on every flush/compaction,
//   - a background compactor merges segments to bound read fan-in, and
//   - readers take refcounted snapshots (memtable copy + segment refs)
//     so scans never block writers and never see later writes.
//
// Recovery replays the current WAL generation into the memtable. A torn
// tail — a short frame or a CRC mismatch from a crash mid-append — is
// truncated to the last complete record instead of failing open; records
// before the tear are never lost, bytes after it are never surfaced.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"
)

// Frame layout, shared by the WAL and segment files:
//
//	| payload len: uint32 LE | crc32c(payload): uint32 LE | payload |
//
// payload = uvarint(len(key)) ++ key ++ value. The CRC covers only the
// payload; a frame whose stored length runs past the buffer is torn, a
// frame whose CRC or key header does not check out is corrupt. Either way
// decoding stops — nothing past the first bad frame is ever returned.
const frameHeaderSize = 8

// maxFrameSize bounds a single record (key + value + header). It guards
// recovery and the fuzz target against pathological lengths in corrupt
// input, and callers against runaway allocations.
const maxFrameSize = 1 << 26 // 64 MiB

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// record is one decoded key/value pair. Both slices may alias the buffer
// they were decoded from; callers that retain them must copy.
type record struct {
	key   []byte
	value []byte
}

// appendFrame appends the framed encoding of one record to dst.
func appendFrame(dst []byte, key, value []byte) []byte {
	var kl [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(kl[:], uint64(len(key)))
	payloadLen := n + len(key) + len(value)

	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = append(dst, kl[:n]...)
	dst = append(dst, key...)
	dst = append(dst, value...)
	payload := dst[start+frameHeaderSize:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// decodeFrames parses complete frames from buf, returning the decoded
// records and the byte length of the valid prefix. Parsing stops at the
// first torn or corrupt frame; buf[valid:] is garbage to be truncated.
// Record slices alias buf.
func decodeFrames(buf []byte) (recs []record, valid int) {
	for valid < len(buf) {
		rest := buf[valid:]
		if len(rest) < frameHeaderSize {
			return recs, valid // torn header
		}
		payloadLen := int(binary.LittleEndian.Uint32(rest))
		if payloadLen < 1 || payloadLen > maxFrameSize {
			return recs, valid // corrupt length
		}
		if len(rest) < frameHeaderSize+payloadLen {
			return recs, valid // torn payload
		}
		payload := rest[frameHeaderSize : frameHeaderSize+payloadLen]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:]) {
			return recs, valid // corrupt payload
		}
		keyLen, n := binary.Uvarint(payload)
		if n <= 0 || keyLen > uint64(len(payload)-n) {
			return recs, valid // corrupt key header
		}
		recs = append(recs, record{
			key:   payload[n : n+int(keyLen)],
			value: payload[n+int(keyLen):],
		})
		valid += frameHeaderSize + payloadLen
	}
	return recs, valid
}

// wal is an append-only frame log with leader-based group commit: each
// appender queues its frame and waits for the batch containing it to be
// durable; the first waiter becomes the batch leader, writes every queued
// frame with one write + one fsync, and wakes the rest. Under concurrent
// load many logical appends amortise a single fsync.
type wal struct {
	f          *os.File
	syncWrites bool
	met        *storeMetrics
	gen        uint64 // WAL generation this file belongs to
	// onCommit, when set, observes every durably committed batch (the
	// exact bytes written, in file order) together with the generation
	// and the file offset the batch landed at. Batch leaders call it
	// outside w.mu but strictly serialised (one leader at a time), so
	// observers see batches in file order. Replication ships these.
	onCommit func(gen, pos uint64, batch []byte)

	mu        sync.Mutex
	cond      *sync.Cond
	pending   []byte // frames queued for the next batch
	spare     []byte // recycled batch buffer
	sealed    uint64 // batches handed to a leader
	committed uint64 // batches durably on disk
	size      uint64 // bytes durably written to the file
	flushing  bool
	err       error // sticky: a failed write poisons the log
}

func newWAL(f *os.File, gen, size uint64, syncWrites bool, met *storeMetrics,
	onCommit func(gen, pos uint64, batch []byte)) *wal {
	w := &wal{f: f, gen: gen, size: size, syncWrites: syncWrites, met: met, onCommit: onCommit}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// append queues one encoded frame and blocks until its batch is durable
// (written, and fsynced when syncWrites is on).
func (w *wal) append(frame []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.pending = append(w.pending, frame...)
	my := w.sealed + 1 // the batch this frame will ride in
	for w.err == nil && w.committed < my {
		if !w.flushing {
			// Become the leader for batch `my`: seal everything queued so
			// far (all of it belongs to this batch) and commit it with one
			// write + fsync while the lock is released.
			w.flushing = true
			w.sealed++
			batch := w.pending
			w.pending = w.spare[:0]
			pos := w.size
			w.mu.Unlock()
			werr := w.commit(batch)
			if werr == nil && w.onCommit != nil {
				// The batch buffer is recycled after this call returns;
				// observers that retain the bytes must copy them.
				w.onCommit(w.gen, pos, batch)
			}
			w.mu.Lock()
			w.spare = batch
			w.flushing = false
			w.committed = w.sealed
			if werr != nil && w.err == nil {
				w.err = werr
			} else if werr == nil {
				w.size = pos + uint64(len(batch))
			}
			w.cond.Broadcast()
			continue
		}
		w.cond.Wait()
	}
	return w.err
}

// applyReplicated writes pre-framed batch bytes at the stated leader
// position — the replica-side mirror of a group commit. A batch wholly
// behind the durable size is a re-delivery and is skipped; a batch
// starting past it means events were lost (the caller must resync); a
// batch straddling it (the replica crashed mid-write and truncated a
// torn tail) has only its missing suffix written, since the durable
// prefix already holds identical leader bytes.
func (w *wal) applyReplicated(pos uint64, batch []byte) (applied bool, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return false, w.err
	}
	end := pos + uint64(len(batch))
	if end <= w.size {
		return false, nil
	}
	if pos > w.size {
		return false, errReplicaGap
	}
	if err := w.commit(batch[w.size-pos:]); err != nil {
		w.err = err
		return false, err
	}
	w.size = end
	return true, nil
}

// commit writes one sealed batch to the file and syncs it.
func (w *wal) commit(batch []byte) error {
	if _, err := w.f.Write(batch); err != nil {
		return fmt.Errorf("store: wal write: %w", err)
	}
	if w.syncWrites {
		start := time.Now()
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: wal fsync: %w", err)
		}
		w.met.walFsync.Observe(time.Since(start).Seconds())
	}
	w.met.walBatches.Inc()
	w.met.walBytes.Add(uint64(len(batch)))
	return nil
}

// close syncs outstanding data and closes the file. Appends after close
// fail with the sticky error.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		w.err = fmt.Errorf("store: wal closed")
	}
	w.cond.Broadcast() // release any appender still waiting on a batch
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
