package metricdb

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestJSONRoundTripZeroValues pins the persistence of zero cells. The
// Value struct's omitempty tags make Float(0), Int(0), and String("")
// all serialise as "{}" — which must still reconstruct exactly, because
// the zero Value decodes back to zero in every field.
func TestJSONRoundTripZeroValues(t *testing.T) {
	db := NewDB()
	tbl, err := db.CreateTable("zeros", sampleSchema())
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{Int(0), String(""), Float(0)},
		{Int(0), String("x"), Float(0)},
		{Int(-1), String(""), Float(-0.0)},
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := db.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	bt, err := back.Table("zeros")
	if err != nil {
		t.Fatal(err)
	}
	got := bt.Select(nil)
	if len(got) != len(rows) {
		t.Fatalf("round trip lost rows: %d, want %d", len(got), len(rows))
	}
	for i, r := range rows {
		for c := range r {
			if got[i][c] != r[c] {
				t.Errorf("row %d cell %d = %+v, want %+v", i, c, got[i][c], r[c])
			}
		}
	}
}

// TestJSONRoundTripProperty is a randomized round-trip property test:
// for seeded random tables — with zero values mixed in deliberately —
// writing then reading must reconstruct the database so exactly that a
// second serialisation is byte-identical to the first.
func TestJSONRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	metricNames := []string{"", "MIPS", "IPC", "LLC-MPKI", "MemBW-GBps"}

	for trial := 0; trial < 25; trial++ {
		db := NewDB()
		tables := 1 + rng.Intn(3)
		for ti := 0; ti < tables; ti++ {
			name := string(rune('a' + ti))
			tbl, err := db.CreateTable(name, sampleSchema())
			if err != nil {
				t.Fatal(err)
			}
			for ri := 0; ri < rng.Intn(20); ri++ {
				var f float64
				// Bias towards exact zeros: the omitempty edge case.
				if rng.Intn(3) != 0 {
					f = rng.NormFloat64() * 1000
				}
				var i int64
				if rng.Intn(3) != 0 {
					i = rng.Int63n(100) - 50
				}
				r := Row{Int(i), String(metricNames[rng.Intn(len(metricNames))]), Float(f)}
				if err := tbl.Insert(r); err != nil {
					t.Fatal(err)
				}
			}
		}

		var first bytes.Buffer
		if err := db.WriteJSON(&first); err != nil {
			t.Fatal(err)
		}
		back, err := ReadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var second bytes.Buffer
		if err := back.WriteJSON(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("trial %d: round trip not byte-identical:\n first %s\nsecond %s",
				trial, first.Bytes(), second.Bytes())
		}
	}
}
