package metricdb

import (
	"errors"
	"testing"
	"time"

	"flare/internal/fault"
	"flare/internal/obs"
	"flare/internal/retry"
)

// fastRetry is defaultJournalRetry without real sleeps.
func fastRetry() retry.Policy {
	p := defaultJournalRetry()
	p.Sleep = func(time.Duration) {}
	p.Registry = obs.NewRegistry()
	return p
}

// TestJournalRetriesTransientAppend injects a single failing WAL append
// and verifies the journal path absorbs it: the Insert succeeds and the
// row is durable.
func TestJournalRetriesTransientAppend(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	in, err := fault.New(fault.MustParseSpec("store.wal.append=error#1"), 1, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	st.SetInjector(in)

	b := NewStoreBackend(st)
	b.Retry = fastRetry()
	db := NewDBWithBackend(b)
	fill(t, db)
	want := dumpJSON(t, db)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if in.Injected() != 1 {
		t.Fatalf("injected = %d, want exactly 1 absorbed fault", in.Injected())
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	db2, err := OpenDB(st2)
	if err != nil {
		t.Fatal(err)
	}
	if got := dumpJSON(t, db2); string(got) != string(want) {
		t.Errorf("recovered DB differs from original after absorbed fault:\n%s\nvs\n%s", got, want)
	}
}

// TestJournalSurfacesPersistentOutage verifies a total store outage is
// reported to the caller once retries are exhausted, wrapping the
// injected sentinel.
func TestJournalSurfacesPersistentOutage(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	in, err := fault.New(fault.MustParseSpec("store.wal.append=error@1"), 1, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	st.SetInjector(in)

	b := NewStoreBackend(st)
	b.Retry = fastRetry()
	if err := b.Insert("samples", Row{Int(1)}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Insert during outage = %v, want wrapped ErrInjected", err)
	}
	if in.Injected() < int(b.Retry.MaxAttempts) {
		t.Errorf("injected = %d, want >= %d (every attempt hit the fault)",
			in.Injected(), b.Retry.MaxAttempts)
	}
}
