// Package metricdb implements the Profiler's storage backend: a small
// in-memory relational store with typed columns, predicate queries, and
// JSON persistence, standing in for the paper's "relational database"
// that records collected statistics along with the commands and
// configurations of running jobs (Sec 4.2).
package metricdb

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// ColType is the type of a table column.
type ColType int

// Column types.
const (
	TypeFloat ColType = iota + 1
	TypeInt
	TypeString
)

// String names the column type.
func (t ColType) String() string {
	switch t {
	case TypeFloat:
		return "float"
	case TypeInt:
		return "int"
	case TypeString:
		return "string"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column describes one table column.
type Column struct {
	Name string  `json:"name"`
	Type ColType `json:"type"`
}

// Value is a dynamically typed cell. Exactly the field matching the
// column's type is meaningful.
type Value struct {
	F float64 `json:"f,omitempty"`
	I int64   `json:"i,omitempty"`
	S string  `json:"s,omitempty"`
}

// Float wraps a float value.
func Float(f float64) Value { return Value{F: f} }

// Int wraps an int value.
func Int(i int64) Value { return Value{I: i} }

// String wraps a string value.
func String(s string) Value { return Value{S: s} }

// Row is one record, with cells parallel to the table's columns.
type Row []Value

// Backend receives every schema definition and row append of a DB,
// letting a durable engine journal them before they are applied in
// memory. Implementations must be safe for concurrent use. A nil backend
// keeps the DB purely in-memory (the historical behaviour).
type Backend interface {
	// CreateTable journals a new table's schema.
	CreateTable(name string, columns []Column) error
	// Insert journals one row append. Calls for one table arrive in
	// insertion order (the table's lock is held across the call), so the
	// journal replays to an identical table.
	Insert(table string, r Row) error
}

// Truncator is an optional Backend capability: journaling a durable
// truncation marker so rows dropped by TruncateHead stay dropped after a
// restart. Backends without it truncate in memory only.
type Truncator interface {
	// Truncate records that all rows of table with sequence numbers below
	// belowSeq are retired.
	Truncate(table string, belowSeq uint64) error
}

// Table is a typed, append-only relation. It is safe for concurrent use:
// inserts take the write lock, queries the read lock.
type Table struct {
	mu      sync.RWMutex
	name    string
	columns []Column
	colIdx  map[string]int
	rows    []Row
	backend Backend // nil for in-memory tables
	// firstSeq is the backend sequence number of rows[0]; it advances as
	// TruncateHead retires the oldest rows. Always 0 without a backend.
	firstSeq uint64
}

// NewTable creates a table with the given schema. Column names must be
// unique and non-empty.
func NewTable(name string, columns []Column) (*Table, error) {
	if name == "" {
		return nil, errors.New("metricdb: empty table name")
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("metricdb: table %s has no columns", name)
	}
	t := &Table{
		name:    name,
		columns: make([]Column, len(columns)),
		colIdx:  make(map[string]int, len(columns)),
	}
	copy(t.columns, columns)
	for i, c := range t.columns {
		if c.Name == "" {
			return nil, fmt.Errorf("metricdb: table %s column %d has empty name", name, i)
		}
		if c.Type < TypeFloat || c.Type > TypeString {
			return nil, fmt.Errorf("metricdb: table %s column %s has invalid type", name, c.Name)
		}
		if _, dup := t.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("metricdb: table %s has duplicate column %s", name, c.Name)
		}
		t.colIdx[c.Name] = i
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns a copy of the schema.
func (t *Table) Columns() []Column {
	out := make([]Column, len(t.columns))
	copy(out, t.columns)
	return out
}

// Len returns the row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert appends a row. The row must have exactly one cell per column.
// With a backend attached the row is journaled durably first; a journal
// failure leaves the in-memory table unchanged.
func (t *Table) Insert(r Row) error {
	if len(r) != len(t.columns) {
		return fmt.Errorf("metricdb: table %s insert with %d cells, want %d", t.name, len(r), len(t.columns))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cp := make(Row, len(r))
	copy(cp, r)
	// Journal under the lock so the backend's sequence order matches the
	// in-memory row order exactly — reconstruction is then byte-identical.
	if t.backend != nil {
		if err := t.backend.Insert(t.name, cp); err != nil {
			return fmt.Errorf("metricdb: journaling %s insert: %w", t.name, err)
		}
	}
	t.rows = append(t.rows, cp)
	return nil
}

// TruncateHead retires the oldest rows so at most keep remain — the
// retention knob for append-only telemetry tables that would otherwise
// grow without bound. With a Truncator backend the truncation is
// journaled first, so a restarted database recovers only the surviving
// rows; journal failure leaves the table unchanged. Returns how many
// rows were dropped. Old journal records are reclaimed lazily by the
// store's segment compaction, not rewritten here.
func (t *Table) TruncateHead(keep int) (int, error) {
	if keep < 0 {
		keep = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	drop := len(t.rows) - keep
	if drop <= 0 {
		return 0, nil
	}
	below := t.firstSeq + uint64(drop)
	if tr, ok := t.backend.(Truncator); ok {
		if err := tr.Truncate(t.name, below); err != nil {
			return 0, fmt.Errorf("metricdb: journaling %s truncation: %w", t.name, err)
		}
	}
	// Copy the survivors into a fresh slice so the dropped prefix is
	// actually released, not pinned by the shared backing array.
	t.rows = append(make([]Row, 0, keep), t.rows[drop:]...)
	t.firstSeq = below
	return drop, nil
}

// ColumnIndex returns the position of the named column, or an error.
func (t *Table) ColumnIndex(name string) (int, error) {
	i, ok := t.colIdx[name]
	if !ok {
		return 0, fmt.Errorf("metricdb: table %s has no column %s", t.name, name)
	}
	return i, nil
}

// Select returns copies of all rows matching the predicate (nil matches
// everything), in insertion order.
func (t *Table) Select(where func(Row) bool) []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Row
	for _, r := range t.rows {
		if where == nil || where(r) {
			cp := make(Row, len(r))
			copy(cp, r)
			out = append(out, cp)
		}
	}
	return out
}

// Floats projects the named float column from rows matching the
// predicate.
func (t *Table) Floats(column string, where func(Row) bool) ([]float64, error) {
	i, err := t.ColumnIndex(column)
	if err != nil {
		return nil, err
	}
	if t.columns[i].Type != TypeFloat {
		return nil, fmt.Errorf("metricdb: column %s.%s is %s, not float", t.name, column, t.columns[i].Type)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []float64
	for _, r := range t.rows {
		if where == nil || where(r) {
			out = append(out, r[i].F)
		}
	}
	return out, nil
}

// DB is a named collection of tables, optionally journaling every
// mutation through a Backend for durability.
type DB struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	backend Backend
}

// NewDB returns an empty in-memory database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// NewDBWithBackend returns an empty database that journals every
// CreateTable and Insert through b. Use store-backed backends (see
// NewStoreBackend / OpenDB) to make the database survive restarts.
func NewDBWithBackend(b Backend) *DB {
	db := NewDB()
	db.backend = b
	return db
}

// CreateTable adds a new table. It fails if the name already exists.
// With a backend attached the schema is journaled durably first.
func (db *DB) CreateTable(name string, columns []Column) (*Table, error) {
	t, err := NewTable(name, columns)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("metricdb: table %s already exists", name)
	}
	if db.backend != nil {
		if err := db.backend.CreateTable(name, t.Columns()); err != nil {
			return nil, fmt.Errorf("metricdb: journaling table %s: %w", name, err)
		}
		t.backend = db.backend
	}
	db.tables[name] = t
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("metricdb: no table %s", name)
	}
	return t, nil
}

// TableNames returns the sorted table names.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// dump is the JSON persistence schema.
type dump struct {
	Tables []tableDump `json:"tables"`
}

type tableDump struct {
	Name    string   `json:"name"`
	Columns []Column `json:"columns"`
	Rows    []Row    `json:"rows"`
}

// WriteJSON serialises the whole database.
func (db *DB) WriteJSON(w io.Writer) error {
	db.mu.RLock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var d dump
	for _, n := range names {
		t := db.tables[n]
		t.mu.RLock()
		td := tableDump{Name: t.name, Columns: t.Columns(), Rows: make([]Row, len(t.rows))}
		copy(td.Rows, t.rows)
		t.mu.RUnlock()
		d.Tables = append(d.Tables, td)
	}
	db.mu.RUnlock()

	if err := json.NewEncoder(w).Encode(d); err != nil {
		return fmt.Errorf("metricdb: encoding database: %w", err)
	}
	return nil
}

// ReadJSON deserialises a database written by WriteJSON.
func ReadJSON(r io.Reader) (*DB, error) {
	var d dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("metricdb: decoding database: %w", err)
	}
	db := NewDB()
	for _, td := range d.Tables {
		t, err := db.CreateTable(td.Name, td.Columns)
		if err != nil {
			return nil, err
		}
		for _, row := range td.Rows {
			if err := t.Insert(row); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}
