package metricdb

import (
	"bytes"
	"sync"
	"testing"
)

func sampleSchema() []Column {
	return []Column{
		{Name: "scenario", Type: TypeInt},
		{Name: "metric", Type: TypeString},
		{Name: "value", Type: TypeFloat},
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("", sampleSchema()); err == nil {
		t.Error("empty table name did not error")
	}
	if _, err := NewTable("t", nil); err == nil {
		t.Error("no columns did not error")
	}
	if _, err := NewTable("t", []Column{{Name: "", Type: TypeFloat}}); err == nil {
		t.Error("empty column name did not error")
	}
	if _, err := NewTable("t", []Column{{Name: "a", Type: 0}}); err == nil {
		t.Error("invalid column type did not error")
	}
	dup := []Column{{Name: "a", Type: TypeFloat}, {Name: "a", Type: TypeInt}}
	if _, err := NewTable("t", dup); err == nil {
		t.Error("duplicate column did not error")
	}
}

func TestInsertAndSelect(t *testing.T) {
	tbl, err := NewTable("samples", sampleSchema())
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{Int(1), String("MIPS"), Float(1000)},
		{Int(1), String("IPC"), Float(0.9)},
		{Int(2), String("MIPS"), Float(800)},
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tbl.Len())
	}

	got := tbl.Select(func(r Row) bool { return r[0].I == 1 })
	if len(got) != 2 {
		t.Errorf("Select scenario=1 returned %d rows, want 2", len(got))
	}
	all := tbl.Select(nil)
	if len(all) != 3 {
		t.Errorf("Select(nil) returned %d rows, want 3", len(all))
	}
}

func TestInsertWrongArity(t *testing.T) {
	tbl, _ := NewTable("samples", sampleSchema())
	if err := tbl.Insert(Row{Int(1)}); err == nil {
		t.Error("short row did not error")
	}
}

func TestSelectReturnsCopies(t *testing.T) {
	tbl, _ := NewTable("samples", sampleSchema())
	if err := tbl.Insert(Row{Int(1), String("MIPS"), Float(5)}); err != nil {
		t.Fatal(err)
	}
	got := tbl.Select(nil)
	got[0][2] = Float(99)
	again := tbl.Select(nil)
	if again[0][2].F != 5 {
		t.Error("Select exposed internal row storage")
	}
}

func TestFloats(t *testing.T) {
	tbl, _ := NewTable("samples", sampleSchema())
	_ = tbl.Insert(Row{Int(1), String("MIPS"), Float(10)})
	_ = tbl.Insert(Row{Int(2), String("MIPS"), Float(20)})

	vals, err := tbl.Floats("value", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 10 || vals[1] != 20 {
		t.Errorf("Floats = %v, want [10 20]", vals)
	}

	if _, err := tbl.Floats("metric", nil); err == nil {
		t.Error("Floats on string column did not error")
	}
	if _, err := tbl.Floats("nosuch", nil); err == nil {
		t.Error("Floats on missing column did not error")
	}
}

func TestDBCreateAndLookup(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable("a", sampleSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("a", sampleSchema()); err == nil {
		t.Error("duplicate table did not error")
	}
	if _, err := db.Table("a"); err != nil {
		t.Errorf("Table(a) errored: %v", err)
	}
	if _, err := db.Table("b"); err == nil {
		t.Error("missing table did not error")
	}
	if _, err := db.CreateTable("b", sampleSchema()); err != nil {
		t.Fatal(err)
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("TableNames = %v, want [a b]", names)
	}
}

func TestDBJSONRoundTrip(t *testing.T) {
	db := NewDB()
	tbl, _ := db.CreateTable("samples", sampleSchema())
	_ = tbl.Insert(Row{Int(7), String("IPC"), Float(1.25)})

	var buf bytes.Buffer
	if err := db.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := back.Table("samples")
	if err != nil {
		t.Fatal(err)
	}
	rows := tb.Select(nil)
	if len(rows) != 1 {
		t.Fatalf("round trip lost rows: %d", len(rows))
	}
	if rows[0][0].I != 7 || rows[0][1].S != "IPC" || rows[0][2].F != 1.25 {
		t.Errorf("round-trip row = %+v", rows[0])
	}
}

func TestReadJSONGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("nope")); err == nil {
		t.Error("garbage input did not error")
	}
}

func TestConcurrentInsertAndQuery(t *testing.T) {
	tbl, _ := NewTable("samples", sampleSchema())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = tbl.Insert(Row{Int(int64(g)), String("MIPS"), Float(float64(i))})
				tbl.Select(func(r Row) bool { return r[0].I == int64(g) })
			}
		}(g)
	}
	wg.Wait()
	if tbl.Len() != 800 {
		t.Errorf("concurrent inserts lost rows: %d, want 800", tbl.Len())
	}
}

func TestColTypeString(t *testing.T) {
	if TypeFloat.String() != "float" || TypeInt.String() != "int" || TypeString.String() != "string" {
		t.Error("ColType.String wrong")
	}
}
