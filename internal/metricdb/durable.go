// Durable backing for the metric database: a Backend implementation that
// journals every table definition and row append into internal/store's
// WAL + segment engine, and OpenDB, which rebuilds a DB from that journal
// after a restart or crash.
//
// Key layout inside the store (ascending scan order is load order):
//
//	r\x00<table>\x00<seq: uint64 BE>  -> JSON-encoded Row
//	s\x00<table>                      -> JSON-encoded schema
//	t\x00<table>                      -> JSON-encoded truncation marker
//
// Row keys embed a per-table big-endian sequence number, so the store's
// sorted scan yields rows in exactly the order they were inserted and a
// reconstructed table is byte-identical (WriteJSON) to the original.
// The truncation marker re-uses the store's newest-value-wins semantics:
// each TruncateHead re-appends the same marker key with a higher
// below_seq, and recovery drops journaled rows beneath it (their bytes
// are reclaimed when segment compaction merges them away).
package metricdb

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"flare/internal/retry"
	"flare/internal/store"
)

const (
	rowKeyPrefix    = "r\x00"
	schemaKeyPrefix = "s\x00"
	truncKeyPrefix  = "t\x00"
)

// rowKey builds the store key for the seq'th row of a table.
func rowKey(table string, seq uint64) []byte {
	k := make([]byte, 0, len(rowKeyPrefix)+len(table)+1+8)
	k = append(k, rowKeyPrefix...)
	k = append(k, table...)
	k = append(k, 0)
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], seq)
	return append(k, s[:]...)
}

// parseRowKey splits a row key into table name and sequence number.
func parseRowKey(k []byte) (table string, seq uint64, ok bool) {
	if !bytes.HasPrefix(k, []byte(rowKeyPrefix)) || len(k) < len(rowKeyPrefix)+1+8 {
		return "", 0, false
	}
	body := k[len(rowKeyPrefix):]
	name := body[:len(body)-9]
	if body[len(name)] != 0 {
		return "", 0, false
	}
	return string(name), binary.BigEndian.Uint64(body[len(name)+1:]), true
}

// schemaRecord is the journaled form of a table definition.
type schemaRecord struct {
	Name    string   `json:"name"`
	Columns []Column `json:"columns"`
}

// truncRecord is the journaled form of a retention truncation: rows of
// the table with seq < BelowSeq are retired.
type truncRecord struct {
	BelowSeq uint64 `json:"below_seq"`
}

// StoreBackend journals metricdb mutations into an embedded store. Every
// Insert is a durable WAL append (group-committed with concurrent
// writers) — the profiler's samples stream to disk as they are recorded
// instead of relying on an end-of-run dump. Transient append failures
// (an injected or real blip on the disk path) are retried with capped
// exponential backoff before the error reaches the caller, so a brief
// store hiccup does not abort a multi-minute profiling run.
type StoreBackend struct {
	st *store.Store

	// Retry is the journal append's retry policy. Replace it (before the
	// first use) to tune the profiler->store path; the zero adjustments
	// in defaultJournalRetry suit the embedded engine's latencies.
	Retry retry.Policy

	mu      sync.Mutex
	nextSeq map[string]uint64
}

// defaultJournalRetry tunes the retry layer for the local journal path:
// a handful of quick attempts — either the disk blip clears in tens of
// milliseconds or the store is down and the caller should know.
func defaultJournalRetry() retry.Policy {
	return retry.Policy{
		MaxAttempts: 4,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		Name:        "metricdb.journal",
	}
}

// NewStoreBackend wraps an open store. Use OpenDB instead when the store
// may already hold journaled tables.
func NewStoreBackend(st *store.Store) *StoreBackend {
	return &StoreBackend{st: st, Retry: defaultJournalRetry(), nextSeq: make(map[string]uint64)}
}

// append journals one durable record through the retry policy.
func (b *StoreBackend) append(key, val []byte) error {
	return b.Retry.Do(context.Background(), func() error {
		return b.st.Append(key, val)
	})
}

// CreateTable journals a schema record.
func (b *StoreBackend) CreateTable(name string, columns []Column) error {
	val, err := json.Marshal(schemaRecord{Name: name, Columns: columns})
	if err != nil {
		return err
	}
	key := append([]byte(schemaKeyPrefix), name...)
	return b.append(key, val)
}

// Truncate journals a retention marker retiring rows below belowSeq.
// Appending the same key again shadows any earlier marker, so the
// newest (highest) below_seq always wins on recovery.
func (b *StoreBackend) Truncate(table string, belowSeq uint64) error {
	val, err := json.Marshal(truncRecord{BelowSeq: belowSeq})
	if err != nil {
		return err
	}
	key := append([]byte(truncKeyPrefix), table...)
	return b.append(key, val)
}

// Insert journals one row under the table's next sequence number.
func (b *StoreBackend) Insert(table string, r Row) error {
	val, err := json.Marshal(r)
	if err != nil {
		return err
	}
	b.mu.Lock()
	seq := b.nextSeq[table]
	b.nextSeq[table] = seq + 1
	b.mu.Unlock()
	return b.append(rowKey(table, seq), val)
}

// Store returns the underlying engine (for stats and lifecycle).
func (b *StoreBackend) Store() *store.Store { return b.st }

// OpenDB reconstructs a database from the journal in st and attaches a
// backend so further mutations stay durable. Opening an empty store
// yields an empty durable DB. The recovered DB serves exactly the rows
// that were durably journaled before the last shutdown or crash.
func OpenDB(st *store.Store) (*DB, error) {
	sn := st.Snapshot()
	defer sn.Release()

	type seqRow struct {
		seq uint64
		row Row
	}
	schemas := make(map[string]schemaRecord)
	rowsByTable := make(map[string][]seqRow)
	truncBelow := make(map[string]uint64)
	nextSeq := make(map[string]uint64)
	var names []string // schema order: ascending table name, per scan

	var scanErr error
	sn.Scan(func(k, v []byte) bool {
		switch {
		case bytes.HasPrefix(k, []byte(schemaKeyPrefix)):
			var rec schemaRecord
			if err := json.Unmarshal(v, &rec); err != nil {
				scanErr = fmt.Errorf("metricdb: decoding schema %q: %w", k, err)
				return false
			}
			schemas[rec.Name] = rec
			names = append(names, rec.Name)
		case bytes.HasPrefix(k, []byte(rowKeyPrefix)):
			table, seq, ok := parseRowKey(k)
			if !ok {
				scanErr = fmt.Errorf("metricdb: malformed row key %q", k)
				return false
			}
			var r Row
			if err := json.Unmarshal(v, &r); err != nil {
				scanErr = fmt.Errorf("metricdb: decoding row %q: %w", k, err)
				return false
			}
			// Scan order is seq order within a table.
			rowsByTable[table] = append(rowsByTable[table], seqRow{seq: seq, row: r})
			if seq >= nextSeq[table] {
				nextSeq[table] = seq + 1
			}
		case bytes.HasPrefix(k, []byte(truncKeyPrefix)):
			var rec truncRecord
			if err := json.Unmarshal(v, &rec); err != nil {
				scanErr = fmt.Errorf("metricdb: decoding truncation marker %q: %w", k, err)
				return false
			}
			truncBelow[string(k[len(truncKeyPrefix):])] = rec.BelowSeq
		default:
			scanErr = fmt.Errorf("metricdb: unknown journal key %q", k)
			return false
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}

	// Build in-memory first (no backend attached) — the journal already
	// holds these records; replaying them must not re-journal. Rows
	// beneath a table's truncation marker were retired by TruncateHead
	// and are skipped (compaction reclaims their bytes eventually).
	db := NewDB()
	for _, name := range names {
		rec := schemas[name]
		t, err := db.CreateTable(rec.Name, rec.Columns)
		if err != nil {
			return nil, fmt.Errorf("metricdb: rebuilding table %s: %w", rec.Name, err)
		}
		below := truncBelow[rec.Name]
		t.firstSeq = below
		for i, sr := range rowsByTable[rec.Name] {
			if sr.seq < below {
				continue
			}
			if err := t.Insert(sr.row); err != nil {
				return nil, fmt.Errorf("metricdb: rebuilding %s row %d: %w", rec.Name, i, err)
			}
		}
		delete(rowsByTable, rec.Name)
	}
	for table := range rowsByTable {
		return nil, fmt.Errorf("metricdb: journal has rows for unknown table %s", table)
	}

	// Now attach the backend, seeded past the recovered sequence numbers.
	backend := &StoreBackend{st: st, Retry: defaultJournalRetry(), nextSeq: nextSeq}
	db.backend = backend
	db.mu.Lock()
	for _, t := range db.tables {
		t.backend = backend
	}
	db.mu.Unlock()
	return db, nil
}
