package metricdb

import (
	"bytes"
	"testing"

	"flare/internal/obs"
	"flare/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	opts := store.DefaultOptions()
	opts.Registry = obs.NewRegistry()
	st, err := store.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// fill inserts a deterministic mix of rows, including zero values.
func fill(t *testing.T, db *DB) {
	t.Helper()
	tbl, err := db.CreateTable("samples", sampleSchema())
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{Int(0), String(""), Float(0)}, // all zero cells
		{Int(1), String("MIPS"), Float(1000.5)},
		{Int(2), String("IPC"), Float(-0.25)},
		{Int(3), String("LLC-MPKI"), Float(0)},
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	other, err := db.CreateTable("job_perf", []Column{
		{Name: "job", Type: TypeString},
		{Name: "mips", Type: TypeFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Insert(Row{String("DC"), Float(812.75)}); err != nil {
		t.Fatal(err)
	}
}

// dumpJSON renders a DB to its canonical JSON bytes.
func dumpJSON(t *testing.T, db *DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDurableBackendGolden pins the determinism contract of the durable
// backend: a DB journaled through the store serialises byte-identically
// to a purely in-memory DB given the same inserts (backend on vs off),
// and reopening the store after a shutdown reconstructs those exact
// bytes again.
func TestDurableBackendGolden(t *testing.T) {
	mem := NewDB()
	fill(t, mem)
	want := dumpJSON(t, mem)

	dir := t.TempDir()
	st := openStore(t, dir)
	durable := NewDBWithBackend(NewStoreBackend(st))
	fill(t, durable)
	if got := dumpJSON(t, durable); !bytes.Equal(got, want) {
		t.Errorf("durable DB differs from in-memory DB:\n got %s\nwant %s", got, want)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	back, err := OpenDB(st2)
	if err != nil {
		t.Fatal(err)
	}
	if got := dumpJSON(t, back); !bytes.Equal(got, want) {
		t.Errorf("reopened DB differs from original:\n got %s\nwant %s", got, want)
	}
}

// TestOpenDBEmptyStore yields an empty, writable durable DB.
func TestOpenDBEmptyStore(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	db, err := OpenDB(st)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(db.TableNames()); n != 0 {
		t.Fatalf("empty store yielded %d tables", n)
	}
	fill(t, db)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	back, err := OpenDB(st2)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := back.Table("samples")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 4 {
		t.Errorf("recovered samples has %d rows, want 4", tbl.Len())
	}
}

// TestDurableDBContinuesAfterReopen checks that inserts after recovery
// continue the journal (sequence numbers resume past the recovered rows)
// rather than overwriting it.
func TestDurableDBContinuesAfterReopen(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	db := NewDBWithBackend(NewStoreBackend(st))
	fill(t, db)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	db2, err := OpenDB(st2)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db2.Table("samples")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{Int(4), String("late"), Float(4.5)}); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	st3 := openStore(t, dir)
	defer st3.Close()
	db3, err := OpenDB(st3)
	if err != nil {
		t.Fatal(err)
	}
	tbl3, err := db3.Table("samples")
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl3.Select(nil)
	if len(rows) != 5 {
		t.Fatalf("after reopen+insert+reopen: %d rows, want 5", len(rows))
	}
	last := rows[4]
	if last[0].I != 4 || last[1].S != "late" || last[2].F != 4.5 {
		t.Errorf("last row = %+v, want {4 late 4.5}", last)
	}
}

// TestDurableDBSurvivesCrash abandons the store without Close (no final
// flush, the journal lives only in the WAL): every committed row must
// come back on reopen. Torn/corrupt WAL tails are exercised in
// internal/store's crash-recovery tests.
func TestDurableDBSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	db := NewDBWithBackend(NewStoreBackend(st))
	tbl, err := db.CreateTable("samples", sampleSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := tbl.Insert(Row{Int(int64(i)), String("MIPS"), Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulated crash: the store is abandoned, not closed. The journal
	// lives in the WAL only.

	st2 := openStore(t, dir)
	defer st2.Close()
	back, err := OpenDB(st2)
	if err != nil {
		t.Fatal(err)
	}
	tbl2, err := back.Table("samples")
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl2.Select(nil)
	if len(rows) != 20 {
		t.Fatalf("crash recovery lost rows: %d, want 20", len(rows))
	}
	for i, r := range rows {
		if r[0].I != int64(i) || r[2].F != float64(i) {
			t.Errorf("row %d = %+v", i, r)
		}
	}
}

func TestRowKeyRoundTrip(t *testing.T) {
	k := rowKey("samples", 42)
	table, seq, ok := parseRowKey(k)
	if !ok || table != "samples" || seq != 42 {
		t.Errorf("parseRowKey = %q,%d,%v", table, seq, ok)
	}
	if _, _, ok := parseRowKey([]byte("r\x00short")); ok {
		t.Error("short row key parsed")
	}
	if _, _, ok := parseRowKey([]byte("x\x00samples\x00aaaaaaaa")); ok {
		t.Error("wrong prefix parsed")
	}
}
