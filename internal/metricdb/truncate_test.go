package metricdb

import (
	"testing"
)

func intColSchema() []Column {
	return []Column{{Name: "n", Type: TypeInt}}
}

func fillInts(t *testing.T, tbl *Table, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := tbl.Insert(Row{Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
}

func intsOf(tbl *Table) []int64 {
	rows := tbl.Select(nil)
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[0].I
	}
	return out
}

func TestTruncateHeadInMemory(t *testing.T) {
	db := NewDB()
	tbl, err := db.CreateTable("events", intColSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillInts(t, tbl, 0, 10)

	dropped, err := tbl.TruncateHead(3)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 7 {
		t.Errorf("dropped = %d, want 7", dropped)
	}
	if got := intsOf(tbl); len(got) != 3 || got[0] != 7 || got[2] != 9 {
		t.Errorf("survivors = %v, want [7 8 9]", got)
	}

	// Truncating to a larger keep than the row count is a no-op.
	if d, err := tbl.TruncateHead(100); err != nil || d != 0 {
		t.Errorf("over-keep truncate = %d, %v; want 0, nil", d, err)
	}
	// keep < 0 clamps to dropping everything.
	if d, err := tbl.TruncateHead(-1); err != nil || d != 3 {
		t.Errorf("negative-keep truncate = %d, %v; want 3, nil", d, err)
	}
	if tbl.Len() != 0 {
		t.Errorf("rows after full truncate = %d", tbl.Len())
	}
}

// TestTruncationSurvivesRestart journals a truncation marker and checks
// that recovery serves only the surviving rows, that inserts resume at
// the right sequence, and that a second truncation shadows the first.
func TestTruncationSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	db := NewDBWithBackend(NewStoreBackend(st))
	tbl, err := db.CreateTable("events", intColSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillInts(t, tbl, 0, 10)
	if _, err := tbl.TruncateHead(4); err != nil { // keeps 6..9
		t.Fatal(err)
	}
	fillInts(t, tbl, 10, 12) // seqs continue 10, 11
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	back, err := OpenDB(st2)
	if err != nil {
		t.Fatal(err)
	}
	tbl2, err := back.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	got := intsOf(tbl2)
	want := []int64{6, 7, 8, 9, 10, 11}
	if len(got) != len(want) {
		t.Fatalf("recovered rows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered rows = %v, want %v", got, want)
		}
	}

	// Truncate again after recovery: the marker must account for the
	// recovered firstSeq, and the newest marker wins the next recovery.
	if _, err := tbl2.TruncateHead(2); err != nil { // keeps 10, 11
		t.Fatal(err)
	}
	fillInts(t, tbl2, 12, 13)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	st3 := openStore(t, dir)
	defer st3.Close()
	final, err := OpenDB(st3)
	if err != nil {
		t.Fatal(err)
	}
	tbl3, err := final.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	got = intsOf(tbl3)
	want = []int64{10, 11, 12}
	if len(got) != len(want) {
		t.Fatalf("second recovery rows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("second recovery rows = %v, want %v", got, want)
		}
	}
}

// TestTruncateEverythingSurvivesRestart retires every row; recovery must
// yield an empty table whose inserts still resume past the old journal.
func TestTruncateEverythingSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	db := NewDBWithBackend(NewStoreBackend(st))
	tbl, err := db.CreateTable("events", intColSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillInts(t, tbl, 0, 5)
	if _, err := tbl.TruncateHead(0); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	back, err := OpenDB(st2)
	if err != nil {
		t.Fatal(err)
	}
	tbl2, err := back.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 0 {
		t.Fatalf("recovered rows = %v, want none", intsOf(tbl2))
	}
	fillInts(t, tbl2, 5, 7)
	if got := intsOf(tbl2); len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Errorf("post-recovery inserts = %v, want [5 6]", got)
	}
}
