// Package refine implements FLARE's data refinement step (paper Sec 4.2):
// dropping raw metrics that are near-duplicates of others. The paper's
// example is memory bandwidth, which their monitoring reported as exactly
// LLC-miss-count times payload size; eliminating such highly correlated
// metrics reduced their 100+ raw metrics to 85 with weaker correlations.
//
// The algorithm is a greedy correlation filter: walk metrics in catalog
// order and drop any whose absolute Pearson correlation with an
// already-kept metric exceeds the threshold. Earlier (more fundamental)
// metrics therefore win over their derived duplicates, matching how the
// catalog is ordered.
package refine

import (
	"errors"
	"fmt"

	"flare/internal/linalg"
	"flare/internal/stats"
)

// DefaultThreshold is the |r| above which two metrics are considered
// duplicates. 0.97 reliably catches functional duplicates measured with a
// few percent of noise while keeping genuinely related-but-distinct
// metrics apart.
const DefaultThreshold = 0.97

// Result describes a refinement: which metric columns survive.
type Result struct {
	// Kept holds the indices of surviving columns, ascending.
	Kept []int
	// Dropped maps each dropped column index to the kept column index that
	// made it redundant.
	Dropped map[int]int
	// Names holds surviving metric names when input names were provided.
	Names []string
}

// Refine filters the columns of m (observations in rows, metrics in
// columns) with the greedy correlation rule. names is optional; when
// non-nil it must have one entry per column.
func Refine(m *linalg.Matrix, names []string, threshold float64) (*Result, error) {
	if m == nil {
		return nil, errors.New("refine: nil matrix")
	}
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("refine: threshold %v outside (0, 1]", threshold)
	}
	if names != nil && len(names) != m.Cols() {
		return nil, fmt.Errorf("refine: %d names for %d columns", len(names), m.Cols())
	}
	if m.Rows() < 3 {
		return nil, errors.New("refine: need at least 3 observations to estimate correlations")
	}

	cols := make([][]float64, m.Cols())
	for j := range cols {
		cols[j] = m.Col(j)
	}

	res := &Result{Dropped: make(map[int]int)}
	for j := 0; j < m.Cols(); j++ {
		dup := -1
		for _, k := range res.Kept {
			if abs(stats.Correlation(cols[j], cols[k])) > threshold {
				dup = k
				break
			}
		}
		if dup >= 0 {
			res.Dropped[j] = dup
			continue
		}
		res.Kept = append(res.Kept, j)
	}

	if names != nil {
		res.Names = make([]string, len(res.Kept))
		for i, j := range res.Kept {
			res.Names[i] = names[j]
		}
	}
	return res, nil
}

// Apply projects m onto the kept columns.
func (r *Result) Apply(m *linalg.Matrix) (*linalg.Matrix, error) {
	if len(r.Kept) == 0 {
		return nil, errors.New("refine: no kept columns")
	}
	for _, j := range r.Kept {
		if j >= m.Cols() {
			return nil, fmt.Errorf("refine: kept column %d outside matrix with %d columns", j, m.Cols())
		}
	}
	out := linalg.NewMatrix(m.Rows(), len(r.Kept))
	for i := 0; i < m.Rows(); i++ {
		for jj, j := range r.Kept {
			out.Set(i, jj, m.At(i, j))
		}
	}
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
