package refine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flare/internal/linalg"
)

// buildMatrix creates an n x 4 matrix where column 1 is an exact multiple
// of column 0, column 2 is independent noise, and column 3 is a noisy
// near-duplicate of column 2.
func buildMatrix(t *testing.T, n int) *linalg.Matrix {
	t.Helper()
	r := rand.New(rand.NewSource(3))
	m := linalg.NewMatrix(n, 4)
	for i := 0; i < n; i++ {
		a := r.NormFloat64()
		c := r.NormFloat64()
		m.Set(i, 0, a)
		m.Set(i, 1, 64*a) // exact duplicate (the paper's MemBW example)
		m.Set(i, 2, c)
		m.Set(i, 3, c+0.01*r.NormFloat64()) // near duplicate
	}
	return m
}

func TestRefineDropsDuplicates(t *testing.T) {
	m := buildMatrix(t, 200)
	res, err := Refine(m, []string{"llc_miss", "mem_bw", "ipc", "ipc_copy"}, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) != 2 {
		t.Fatalf("kept %d columns (%v), want 2", len(res.Kept), res.Names)
	}
	if res.Kept[0] != 0 || res.Kept[1] != 2 {
		t.Errorf("kept = %v, want [0 2] (earlier metric wins)", res.Kept)
	}
	if res.Dropped[1] != 0 || res.Dropped[3] != 2 {
		t.Errorf("dropped map = %v, want 1->0 and 3->2", res.Dropped)
	}
	if res.Names[0] != "llc_miss" || res.Names[1] != "ipc" {
		t.Errorf("surviving names = %v", res.Names)
	}
}

func TestRefineKeepsIndependentColumns(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	m := linalg.NewMatrix(300, 5)
	for i := 0; i < 300; i++ {
		for j := 0; j < 5; j++ {
			m.Set(i, j, r.NormFloat64())
		}
	}
	res, err := Refine(m, nil, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) != 5 {
		t.Errorf("independent columns kept = %d, want 5", len(res.Kept))
	}
}

func TestRefineAntiCorrelatedIsDuplicate(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	m := linalg.NewMatrix(100, 2)
	for i := 0; i < 100; i++ {
		a := r.NormFloat64()
		m.Set(i, 0, a)
		m.Set(i, 1, -a) // perfectly anti-correlated carries no new info
	}
	res, err := Refine(m, nil, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) != 1 {
		t.Errorf("anti-correlated pair kept %d columns, want 1", len(res.Kept))
	}
}

func TestRefineValidation(t *testing.T) {
	m := buildMatrix(t, 100)
	if _, err := Refine(nil, nil, 0.9); err == nil {
		t.Error("nil matrix did not error")
	}
	if _, err := Refine(m, nil, 0); err == nil {
		t.Error("zero threshold did not error")
	}
	if _, err := Refine(m, nil, 1.5); err == nil {
		t.Error("threshold > 1 did not error")
	}
	if _, err := Refine(m, []string{"a"}, 0.9); err == nil {
		t.Error("name/column mismatch did not error")
	}
	tiny := linalg.NewMatrix(2, 2)
	if _, err := Refine(tiny, nil, 0.9); err == nil {
		t.Error("too few observations did not error")
	}
}

func TestApplyProjects(t *testing.T) {
	m := buildMatrix(t, 50)
	res, err := Refine(m, nil, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != m.Rows() || out.Cols() != len(res.Kept) {
		t.Fatalf("Apply dims = %dx%d, want %dx%d", out.Rows(), out.Cols(), m.Rows(), len(res.Kept))
	}
	for i := 0; i < out.Rows(); i++ {
		for jj, j := range res.Kept {
			if out.At(i, jj) != m.At(i, j) {
				t.Fatalf("Apply misplaced cell (%d,%d)", i, jj)
			}
		}
	}
}

func TestApplyOnNarrowerMatrixErrors(t *testing.T) {
	m := buildMatrix(t, 50)
	res, err := Refine(m, nil, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	narrow := linalg.NewMatrix(10, 1)
	if _, err := res.Apply(narrow); err == nil {
		t.Error("Apply on narrower matrix did not error")
	}
}

func TestRefinePropertyKeptPlusDroppedCoversAll(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 20+r.Intn(50), 2+r.Intn(8)
		m := linalg.NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			base := r.NormFloat64()
			for j := 0; j < cols; j++ {
				// Random mixture of a shared factor and noise creates a
				// realistic spread of correlations.
				m.Set(i, j, base*float64(j%3)+r.NormFloat64())
			}
		}
		res, err := Refine(m, nil, 0.9)
		if err != nil {
			return false
		}
		if len(res.Kept)+len(res.Dropped) != cols {
			return false
		}
		// Every dropped column must reference a kept column.
		kept := make(map[int]bool, len(res.Kept))
		for _, k := range res.Kept {
			kept[k] = true
		}
		for _, k := range res.Dropped {
			if !kept[k] {
				return false
			}
		}
		return len(res.Kept) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
