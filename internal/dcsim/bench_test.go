package dcsim

import (
	"testing"
	"time"
)

// BenchmarkRunPaperTrace measures generating the paper-scale 28-day
// scenario population.
func BenchmarkRunPaperTrace(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(trace.Scenarios.Len()), "scenarios")
	}
}

// BenchmarkRunWeekTrace measures a quick one-week trace.
func BenchmarkRunWeekTrace(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Duration = 7 * 24 * time.Hour
	cfg.ResizesPerJobPerDay = 6
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
