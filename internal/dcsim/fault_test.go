package dcsim

import (
	"fmt"
	"testing"

	"flare/internal/fault"
	"flare/internal/obs"
)

// faultInjector builds a fresh injector for one simulation run.
func faultInjector(t *testing.T, spec string, seed int64) *fault.Injector {
	t.Helper()
	in, err := fault.New(fault.MustParseSpec(spec), seed, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestMachineFailuresDisplaceAndReschedule arms a high machine-failure
// rate and checks the accounting invariants: every displaced instance is
// either rescheduled on a survivor or rejected, and the rack's vCPU
// bookkeeping stays consistent.
func TestMachineFailuresDisplaceAndReschedule(t *testing.T) {
	cfg := shortConfig()
	cfg.RecordEvents = true
	cfg.Faults = faultInjector(t, "dcsim.machine.fail=error@0.05", 42)
	trace, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Stats
	if st.MachineFailures == 0 {
		t.Fatal("no machine failures injected at 5% per resize over a week")
	}
	if st.FailedInstances == 0 {
		t.Error("machine failures displaced no instances")
	}
	if st.Rescheduled > st.FailedInstances {
		t.Errorf("Rescheduled %d > FailedInstances %d", st.Rescheduled, st.FailedInstances)
	}
	if got := cfg.Faults.Injected(); got != st.MachineFailures {
		t.Errorf("injector recorded %d faults, stats recorded %d failures", got, st.MachineFailures)
	}
	// The trace must still be structurally sound: replaying its event log
	// is exercised elsewhere; here check per-machine vCPU conservation by
	// summing the event ledger: schedules - evictions - finishes >= 0.
	perMachine := make(map[int]int)
	for _, e := range trace.Events {
		switch e.Type.String() {
		case "SCHEDULE":
			perMachine[e.Machine] += e.Count
		default:
			perMachine[e.Machine] -= e.Count
		}
	}
	for m, n := range perMachine {
		if n < 0 {
			t.Errorf("machine %d ends with negative instance ledger %d", m, n)
		}
	}
}

// TestMachineFailuresDeterministic runs the same config + fault spec +
// seeds twice and requires byte-identical fault schedules and identical
// traces — the core reproducibility claim of the injection layer.
func TestMachineFailuresDeterministic(t *testing.T) {
	run := func() (*Trace, string) {
		cfg := shortConfig()
		cfg.RecordEvents = true
		cfg.Faults = faultInjector(t, "dcsim.machine.fail=error@0.05", 42)
		trace, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return trace, cfg.Faults.ScheduleString()
	}
	a, schedA := run()
	b, schedB := run()
	if schedA != schedB {
		t.Fatalf("fault schedules differ across identical runs:\n%s\nvs\n%s", schedA, schedB)
	}
	if schedA == "" {
		t.Fatal("empty fault schedule")
	}
	if a.Stats != b.Stats {
		t.Errorf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Scenarios.Len() != b.Scenarios.Len() {
		t.Errorf("scenario counts differ: %d vs %d", a.Scenarios.Len(), b.Scenarios.Len())
	}
	if fmt.Sprint(a.Events) != fmt.Sprint(b.Events) {
		t.Error("event logs differ across identical runs")
	}
}

// TestNilInjectorMatchesBaseline confirms threading a nil injector (the
// production default) leaves the simulation byte-identical to one with no
// Faults field at all.
func TestNilInjectorMatchesBaseline(t *testing.T) {
	base := shortConfig()
	base.RecordEvents = true
	withNil := base
	withNil.Faults = nil

	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(withNil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats || fmt.Sprint(a.Events) != fmt.Sprint(b.Events) {
		t.Error("nil injector perturbed the simulation")
	}
}
