// Package dcsim simulates the paper's evaluation datacenter (Sec 5.1): a
// rack of homogeneous machines hosting containerised HP and LP jobs,
// scheduled greedily onto the least-utilised machine without overcommit.
// Its product is the *scenario population*: every distinct job colocation
// observed on any machine during the trace, the raw material FLARE's
// Analyzer consumes.
//
// Jobs are modelled as scale-out deployments (paper Sec 5.1: "instances of
// a job are identical processes which run in a distributed manner to share
// the loads"). Each job's fleet-wide instance count performs a slow
// mean-reverting random walk as simulated users resize their services;
// scale-ups place instances on the least-utilised machine, scale-downs
// evict from the most-loaded machine hosting the job. Machines therefore
// carry similar, slowly churning mixes of many job types — exactly the
// regime in which a datacenter's colocation population stays in the
// hundreds (paper: 895) while still covering a wide occupancy range
// (Fig 3a).
package dcsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"flare/internal/clustertrace"
	"flare/internal/fault"
	"flare/internal/machine"
	"flare/internal/mathx"
	"flare/internal/obs"
	"flare/internal/scenario"
	"flare/internal/workload"
)

// Policy selects the scheduler's placement rule.
type Policy int

// Placement policies.
const (
	// PolicyLeastUtilised places on the machine with the most free vCPUs
	// (the paper's greedy load-balancing scheduler).
	PolicyLeastUtilised Policy = iota + 1
	// PolicyFirstFit packs instances onto the lowest-indexed machine with
	// room (bin-packing; concentrates load and widens the occupancy
	// spread).
	PolicyFirstFit
	// PolicyRandom places on a uniformly random machine with room.
	PolicyRandom
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyLeastUtilised:
		return "least-utilised"
	case PolicyFirstFit:
		return "first-fit"
	case PolicyRandom:
		return "random"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterises a datacenter simulation.
type Config struct {
	Machines int           // number of machines in the evaluation rack
	Shape    machine.Shape // machine SKU (homogeneous)
	Catalog  *workload.Catalog

	// Scheduler selects the placement policy; the zero value means
	// PolicyLeastUtilised (the paper's scheduler).
	Scheduler Policy

	// ResizesPerJobPerDay is the mean rate at which each deployment's
	// instance count changes (the paper's jobs run >= 30 minutes, so
	// resize cadence is slow relative to measurement windows).
	ResizesPerJobPerDay float64
	// TargetHPInstances / TargetLPInstances are the mean fleet-wide
	// instance counts each HP/LP deployment reverts toward.
	TargetHPInstances float64
	TargetLPInstances float64
	// MaxResizeStep bounds how many instances one resize adds or removes.
	MaxResizeStep int
	// Duration is the simulated wall-clock span of the trace.
	Duration time.Duration
	// Seed drives all randomness; equal seeds give identical traces.
	Seed int64
	// RecordEvents additionally captures every placement/eviction as a
	// cluster-trace task event (Trace.Events), exportable with
	// clustertrace.WriteCSV and replayable with clustertrace.Replay.
	RecordEvents bool

	// Faults optionally injects machine failures. After every resize
	// event the site "dcsim.machine.fail" is evaluated; when it fires,
	// the fault's Roll picks the victim machine, whose instances are all
	// evicted at once and rescheduled across the surviving machines (the
	// victim rejoins the rack empty, like a repaired host). Because the
	// injector's per-site streams are independent of the simulation rng,
	// the trace with faults armed is still fully determined by
	// (Seed, fault seed, fault spec). A nil injector injects nothing.
	Faults *fault.Injector
}

// DefaultConfig returns a configuration tuned to produce a scenario
// population comparable to the paper's (895 distinct colocations from one
// rack of eight machines).
func DefaultConfig() Config {
	return Config{
		Machines:            8,
		Shape:               machine.DefaultShape(),
		Catalog:             workload.DefaultCatalog(),
		ResizesPerJobPerDay: 1.5,
		TargetHPInstances:   6,
		TargetLPInstances:   4,
		MaxResizeStep:       2,
		Duration:            28 * 24 * time.Hour,
		Seed:                1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Machines <= 0:
		return errors.New("dcsim: need at least one machine")
	case c.Catalog == nil || c.Catalog.Len() == 0:
		return errors.New("dcsim: empty job catalog")
	case c.ResizesPerJobPerDay <= 0:
		return errors.New("dcsim: non-positive resize rate")
	case c.TargetHPInstances <= 0:
		return errors.New("dcsim: non-positive HP instance target")
	case c.TargetLPInstances < 0:
		return errors.New("dcsim: negative LP instance target")
	case c.MaxResizeStep <= 0:
		return errors.New("dcsim: non-positive resize step")
	case c.Duration <= 0:
		return errors.New("dcsim: non-positive duration")
	case c.Scheduler != 0 && (c.Scheduler < PolicyLeastUtilised || c.Scheduler > PolicyRandom):
		return fmt.Errorf("dcsim: invalid scheduler policy %d", int(c.Scheduler))
	}
	return c.Shape.Validate()
}

// Trace is the output of a simulation run.
type Trace struct {
	Scenarios *scenario.Set // deduplicated colocation population
	Stats     Stats         // operational statistics
	// PerMachine[i] lists the distinct scenario IDs observed on machine i,
	// in first-observation order. A canary-cluster evaluation (WSMeter
	// style) samples machines and evaluates exactly these scenarios.
	PerMachine [][]int
	// Events is the task-event log (only when Config.RecordEvents).
	Events []clustertrace.Event
}

// Stats summarises a simulation run.
type Stats struct {
	Resizes         int           // deployment resize events processed
	Scheduled       int           // instances placed
	Evicted         int           // instances removed by scale-downs
	Rejected        int           // instances denied for lack of capacity
	Transitions     int           // machine-state changes observed
	MachineFailures int           // injected machine failures
	FailedInstances int           // instances displaced by machine failures
	Rescheduled     int           // displaced instances placed on survivors
	SimulatedSpan   time.Duration // trace length
}

// Run simulates the datacenter and returns its scenario population.
func Run(cfg Config) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := newSim(cfg)
	s.run()
	s.stats.record(cfg, s.scenarios.Len())
	return &Trace{
		Scenarios:  s.scenarios,
		Stats:      s.stats,
		PerMachine: s.perMachine,
		Events:     s.events,
	}, nil
}

// record publishes the run's scheduler activity to the default telemetry
// registry, labelled by placement policy, so simulation work shows up at
// /metrics alongside the pipeline stages it feeds.
func (st Stats) record(cfg Config, scenarios int) {
	policy := cfg.Scheduler
	if policy == 0 {
		policy = PolicyLeastUtilised
	}
	reg := obs.Default()
	add := func(c *obs.Counter, v int) { c.Add(uint64(v)) }
	lbl := policy.String()
	add(reg.Counter("flare_dcsim_resizes_total", "deployment resize events processed", "policy", lbl), st.Resizes)
	add(reg.Counter("flare_dcsim_placements_total", "instances placed on machines", "policy", lbl), st.Scheduled)
	add(reg.Counter("flare_dcsim_evictions_total", "instances removed by scale-downs", "policy", lbl), st.Evicted)
	add(reg.Counter("flare_dcsim_rejections_total", "placements denied for lack of capacity", "policy", lbl), st.Rejected)
	add(reg.Counter("flare_dcsim_transitions_total", "machine-state changes observed", "policy", lbl), st.Transitions)
	add(reg.Counter("flare_dcsim_machine_failures_total", "injected machine failures", "policy", lbl), st.MachineFailures)
	add(reg.Counter("flare_dcsim_failed_instances_total", "instances displaced by machine failures", "policy", lbl), st.FailedInstances)
	add(reg.Counter("flare_dcsim_reschedules_total", "displaced instances placed on surviving machines", "policy", lbl), st.Rescheduled)
	reg.Gauge("flare_dcsim_scenarios",
		"distinct colocation scenarios produced by the last simulation run",
		"policy", policy.String()).Set(float64(scenarios))
}

// event is one deployment resize occurrence.
type event struct {
	at  time.Duration
	job int // catalog profile index
	seq int // tiebreaker for determinism
}

// eventQueue is a min-heap on (at, seq).
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// machineState tracks the jobs resident on one machine.
type machineState struct {
	jobs      map[string]int // job name -> instance count
	usedVCPUs int
}

type sim struct {
	cfg        Config
	rng        *rand.Rand
	queue      eventQueue
	seq        int
	machines   []machineState
	profiles   []workload.Profile
	scenarios  *scenario.Set
	stats      Stats
	vcpuCap    int
	perMachine [][]int        // distinct scenario IDs seen per machine
	seenOn     []map[int]bool // dedup helper for perMachine
	events     []clustertrace.Event
	now        time.Duration // current simulation time for event stamps
}

func newSim(cfg Config) *sim {
	s := &sim{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		machines:  make([]machineState, cfg.Machines),
		profiles:  cfg.Catalog.Profiles(),
		scenarios: scenario.NewSet(),
		vcpuCap:   machine.BaselineConfig(cfg.Shape).VCPUs(),
	}
	s.perMachine = make([][]int, cfg.Machines)
	s.seenOn = make([]map[int]bool, cfg.Machines)
	for i := range s.machines {
		s.machines[i].jobs = make(map[string]int)
		s.seenOn[i] = make(map[int]bool)
	}
	return s
}

func (s *sim) push(e event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
}

// run seeds each deployment near its target size, then processes resize
// events until the trace ends.
func (s *sim) run() {
	for j, p := range s.profiles {
		initial := int(s.target(p)) - 1 + s.rng.Intn(3)
		for k := 0; k < initial; k++ {
			s.scaleUp(p.Name, 1)
		}
		s.push(event{at: s.nextGap(), job: j})
	}

	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(event)
		if e.at > s.cfg.Duration {
			break
		}
		s.now = e.at
		s.handleResize(e)
		if f := s.cfg.Faults.Hit("dcsim.machine.fail"); f.Fired() {
			s.failMachine(int(f.Roll % uint64(len(s.machines))))
		}
		s.push(event{at: e.at + s.nextGap(), job: e.job})
	}
	s.stats.SimulatedSpan = s.cfg.Duration
}

func (s *sim) nextGap() time.Duration {
	days := s.rng.ExpFloat64() / s.cfg.ResizesPerJobPerDay
	return time.Duration(days * 24 * float64(time.Hour))
}

// target returns the mean fleet size a deployment reverts toward.
func (s *sim) target(p workload.Profile) float64 {
	if p.IsHP() {
		return s.cfg.TargetHPInstances
	}
	return s.cfg.TargetLPInstances
}

// handleResize grows or shrinks one deployment. The direction is a
// mean-reverting coin flip: deployments above target tend to shrink,
// below target tend to grow, so fleet sizes wander over a band of
// utilisations without drifting off to zero or saturation.
func (s *sim) handleResize(e event) {
	s.stats.Resizes++
	p := s.profiles[e.job]
	current := s.deploymentSize(p.Name)
	tgt := s.target(p)

	pUp := mathx.Clamp(0.5+0.35*(tgt-float64(current))/(tgt+1), 0.05, 0.95)
	step := 1 + s.rng.Intn(s.cfg.MaxResizeStep)
	if s.rng.Float64() < pUp {
		s.scaleUp(p.Name, step)
	} else {
		s.scaleDown(p.Name, step)
	}
}

// deploymentSize returns the fleet-wide instance count of a job.
func (s *sim) deploymentSize(job string) int {
	var n int
	for i := range s.machines {
		n += s.machines[i].jobs[job]
	}
	return n
}

// scaleUp places count instances one at a time according to the
// configured scheduler policy; saturation denies the remainder.
func (s *sim) scaleUp(job string, count int) {
	for i := 0; i < count; i++ {
		m := s.pickMachine()
		if m < 0 {
			s.stats.Rejected++
			continue
		}
		s.machines[m].jobs[job]++
		s.machines[m].usedVCPUs += workload.InstanceVCPUs
		s.stats.Scheduled++
		s.record(m, job, clustertrace.Schedule)
		s.observe(m)
	}
}

// scaleDown evicts count instances, each from the most-loaded machine
// hosting the job (draining the hottest machine first).
func (s *sim) scaleDown(job string, count int) {
	for i := 0; i < count; i++ {
		m := s.mostLoadedHosting(job)
		if m < 0 {
			return // deployment already empty
		}
		st := &s.machines[m]
		st.jobs[job]--
		if st.jobs[job] == 0 {
			delete(st.jobs, job)
		}
		st.usedVCPUs -= workload.InstanceVCPUs
		s.stats.Evicted++
		s.record(m, job, clustertrace.Finish)
		s.observe(m)
	}
}

// pickMachine returns the target machine for one instance under the
// configured policy, or -1 when the rack is full. Ties break to the
// lowest index for determinism.
func (s *sim) pickMachine() int { return s.pickMachineExcluding(-1) }

// pickMachineExcluding is pickMachine with one machine barred from
// placement (the failed machine during reschedules); -1 bars nothing.
func (s *sim) pickMachineExcluding(exclude int) int {
	switch s.cfg.Scheduler {
	case PolicyFirstFit:
		for i := range s.machines {
			if i != exclude && s.vcpuCap-s.machines[i].usedVCPUs >= workload.InstanceVCPUs {
				return i
			}
		}
		return -1
	case PolicyRandom:
		var candidates []int
		for i := range s.machines {
			if i != exclude && s.vcpuCap-s.machines[i].usedVCPUs >= workload.InstanceVCPUs {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) == 0 {
			return -1
		}
		return candidates[s.rng.Intn(len(candidates))]
	default: // PolicyLeastUtilised
		best, bestFree := -1, -1
		for i := range s.machines {
			free := s.vcpuCap - s.machines[i].usedVCPUs
			if i != exclude && free >= workload.InstanceVCPUs && free > bestFree {
				best, bestFree = i, free
			}
		}
		return best
	}
}

// failMachine simulates an abrupt machine loss: everything on the victim
// is evicted at once and the displaced instances are rescheduled across
// the surviving machines under the configured policy. The victim rejoins
// the rack empty. Jobs are processed in sorted-name order so the
// reschedule sequence (and hence the trace) is deterministic.
func (s *sim) failMachine(victim int) {
	s.stats.MachineFailures++
	st := &s.machines[victim]
	jobs := make([]string, 0, len(st.jobs))
	for job := range st.jobs {
		jobs = append(jobs, job)
	}
	sort.Strings(jobs)
	counts := make([]int, len(jobs))
	for i, job := range jobs {
		counts[i] = st.jobs[job]
		delete(st.jobs, job)
		st.usedVCPUs -= counts[i] * workload.InstanceVCPUs
		s.stats.FailedInstances += counts[i]
		s.recordN(victim, job, clustertrace.Evict, counts[i])
	}
	for i, job := range jobs {
		for k := 0; k < counts[i]; k++ {
			m := s.pickMachineExcluding(victim)
			if m < 0 {
				s.stats.Rejected++
				continue
			}
			s.machines[m].jobs[job]++
			s.machines[m].usedVCPUs += workload.InstanceVCPUs
			s.stats.Rescheduled++
			s.record(m, job, clustertrace.Schedule)
			s.observe(m)
		}
	}
}

// mostLoadedHosting returns the machine with the least free vCPUs among
// those hosting the job, or -1. Ties break to the lowest index.
func (s *sim) mostLoadedHosting(job string) int {
	best, bestUsed := -1, -1
	for i := range s.machines {
		if s.machines[i].jobs[job] == 0 {
			continue
		}
		if s.machines[i].usedVCPUs > bestUsed {
			best, bestUsed = i, s.machines[i].usedVCPUs
		}
	}
	return best
}

// record appends a single-instance task event when event recording is
// enabled.
func (s *sim) record(m int, job string, typ clustertrace.EventType) {
	s.recordN(m, job, typ, 1)
}

// recordN appends a task event covering n instances when event recording
// is enabled.
func (s *sim) recordN(m int, job string, typ clustertrace.EventType, n int) {
	if !s.cfg.RecordEvents {
		return
	}
	s.events = append(s.events, clustertrace.Event{
		TimestampUs: s.now.Microseconds(),
		Machine:     m,
		Job:         job,
		Type:        typ,
		Count:       n,
	})
}

// observe records the machine's current colocation (if non-empty) into
// the scenario population.
func (s *sim) observe(m int) {
	s.stats.Transitions++
	st := &s.machines[m]
	if len(st.jobs) == 0 {
		return
	}
	sc, err := scenario.New(scenario.PlacementsFromCounts(st.jobs))
	if err != nil {
		// Unreachable: placements are non-empty with positive counts.
		panic(fmt.Sprintf("dcsim: invalid observed scenario: %v", err))
	}
	id := s.scenarios.Add(sc)
	if !s.seenOn[m][id] {
		s.seenOn[m][id] = true
		s.perMachine[m] = append(s.perMachine[m], id)
	}
}
