package dcsim

import (
	"testing"
	"time"

	"flare/internal/clustertrace"
	"flare/internal/machine"
	"flare/internal/obs"
	"flare/internal/workload"
)

func shortConfig() Config {
	cfg := DefaultConfig()
	cfg.Duration = 7 * 24 * time.Hour
	cfg.ResizesPerJobPerDay = 6
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no-machines", func(c *Config) { c.Machines = 0 }},
		{"nil-catalog", func(c *Config) { c.Catalog = nil }},
		{"no-resizes", func(c *Config) { c.ResizesPerJobPerDay = 0 }},
		{"no-duration", func(c *Config) { c.Duration = 0 }},
		{"bad-hp-target", func(c *Config) { c.TargetHPInstances = 0 }},
		{"bad-lp-target", func(c *Config) { c.TargetLPInstances = -1 }},
		{"bad-step", func(c *Config) { c.MaxResizeStep = 0 }},
		{"bad-shape", func(c *Config) { c.Shape.Sockets = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate accepted an invalid config")
			}
		})
	}
}

func TestRunProducesScenarios(t *testing.T) {
	trace, err := Run(shortConfig())
	if err != nil {
		t.Fatal(err)
	}
	if trace.Scenarios.Len() < 100 {
		t.Errorf("week-long trace produced only %d scenarios", trace.Scenarios.Len())
	}
	if trace.Stats.Scheduled == 0 {
		t.Error("no instances scheduled")
	}
	if trace.Stats.SimulatedSpan != 7*24*time.Hour {
		t.Errorf("SimulatedSpan = %v, want 7d", trace.Stats.SimulatedSpan)
	}
}

func TestRunDeterministicAcrossSeeds(t *testing.T) {
	a, err := Run(shortConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shortConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Scenarios.Len() != b.Scenarios.Len() {
		t.Fatalf("same seed gave %d vs %d scenarios", a.Scenarios.Len(), b.Scenarios.Len())
	}
	for i := 0; i < a.Scenarios.Len(); i++ {
		sa, _ := a.Scenarios.Get(i)
		sb, _ := b.Scenarios.Get(i)
		if sa.Key() != sb.Key() || sa.Observed != sb.Observed {
			t.Fatalf("scenario %d differs across identical runs", i)
		}
	}

	cfg := shortConfig()
	cfg.Seed = 99
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Scenarios.Len() == a.Scenarios.Len() {
		// Lengths could coincide, but every scenario matching would mean
		// the seed is ignored.
		same := true
		for i := 0; i < c.Scenarios.Len() && same; i++ {
			sa, _ := a.Scenarios.Get(i)
			sc, _ := c.Scenarios.Get(i)
			same = sa.Key() == sc.Key()
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestScenariosNeverOvercommit(t *testing.T) {
	trace, err := Run(shortConfig())
	if err != nil {
		t.Fatal(err)
	}
	capVCPUs := machine.BaselineConfig(machine.DefaultShape()).VCPUs()
	for _, sc := range trace.Scenarios.All() {
		if sc.VCPUs() > capVCPUs {
			t.Errorf("scenario %s occupies %d vCPUs, machine has %d", sc.Key(), sc.VCPUs(), capVCPUs)
		}
	}
}

func TestScenariosOnlyContainCatalogJobs(t *testing.T) {
	cfg := shortConfig()
	trace, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range trace.Scenarios.All() {
		for _, p := range sc.Placements {
			if _, err := cfg.Catalog.Lookup(p.Job); err != nil {
				t.Errorf("scenario contains unknown job %q", p.Job)
			}
		}
	}
}

func TestScenarioDiversity(t *testing.T) {
	// The population must include both HP-only, LP-containing, and mixed
	// scenarios across a range of occupancies (Fig 3a's diversity).
	trace, err := Run(shortConfig())
	if err != nil {
		t.Fatal(err)
	}
	cat := workload.DefaultCatalog()
	var hpOnly, withLP, nearFull, light int
	capVCPUs := machine.BaselineConfig(machine.DefaultShape()).VCPUs()
	for _, sc := range trace.Scenarios.All() {
		hp, lp := sc.CountByClass(cat)
		if lp == 0 && hp > 0 {
			hpOnly++
		}
		if lp > 0 {
			withLP++
		}
		occ := sc.Occupancy(capVCPUs)
		if occ >= 0.9 {
			nearFull++
		}
		if occ <= 0.25 {
			light++
		}
	}
	if hpOnly == 0 || withLP == 0 {
		t.Errorf("population lacks class diversity: hpOnly=%d withLP=%d", hpOnly, withLP)
	}
	if nearFull == 0 || light == 0 {
		t.Errorf("population lacks occupancy diversity: nearFull=%d light=%d", nearFull, light)
	}
}

func TestPaperScalePopulation(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping month-long trace in -short mode")
	}
	// The default (month-long) config should land in the same regime as
	// the paper's 895-scenario population.
	trace, err := Run(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := trace.Scenarios.Len()
	if n < 500 || n > 1500 {
		t.Errorf("default trace produced %d scenarios, want 500..1500 (paper: 895)", n)
	}
}

func TestRejectionsOnlyWhenSaturated(t *testing.T) {
	// With small deployment targets nothing should ever be rejected.
	cfg := shortConfig()
	cfg.TargetHPInstances = 2
	cfg.TargetLPInstances = 1
	trace, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Stats.Rejected > trace.Stats.Scheduled/10 {
		t.Errorf("low-load trace rejected %d of %d", trace.Stats.Rejected, trace.Stats.Scheduled)
	}
}

func TestSchedulerPolicies(t *testing.T) {
	base := shortConfig()
	results := map[Policy]*Trace{}
	for _, pol := range []Policy{PolicyLeastUtilised, PolicyFirstFit, PolicyRandom} {
		cfg := base
		cfg.Scheduler = pol
		trace, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if trace.Scenarios.Len() == 0 {
			t.Fatalf("%s produced no scenarios", pol)
		}
		results[pol] = trace
	}
	// First-fit concentrates load, so its hottest machine must see at
	// least as many distinct scenarios as under least-utilised.
	maxScen := func(tr *Trace) int {
		out := 0
		for _, ids := range tr.PerMachine {
			if len(ids) > out {
				out = len(ids)
			}
		}
		return out
	}
	if maxScen(results[PolicyFirstFit]) < maxScen(results[PolicyLeastUtilised]) {
		t.Errorf("first-fit hottest machine saw %d scenarios, least-utilised %d; packing should concentrate churn",
			maxScen(results[PolicyFirstFit]), maxScen(results[PolicyLeastUtilised]))
	}
	// Different policies must induce different populations.
	if results[PolicyFirstFit].Scenarios.Len() == results[PolicyLeastUtilised].Scenarios.Len() {
		a, _ := results[PolicyFirstFit].Scenarios.Get(0)
		b, _ := results[PolicyLeastUtilised].Scenarios.Get(0)
		if a.Key() == b.Key() && results[PolicyFirstFit].Stats.Scheduled == results[PolicyLeastUtilised].Stats.Scheduled {
			t.Error("policies produced identical traces")
		}
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyLeastUtilised.String() != "least-utilised" ||
		PolicyFirstFit.String() != "first-fit" ||
		PolicyRandom.String() != "random" {
		t.Error("Policy.String wrong")
	}
}

func TestPerMachineAttributionConsistent(t *testing.T) {
	trace, err := Run(shortConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.PerMachine) != shortConfig().Machines {
		t.Fatalf("PerMachine has %d entries, want %d", len(trace.PerMachine), shortConfig().Machines)
	}
	seen := map[int]bool{}
	for m, ids := range trace.PerMachine {
		dup := map[int]bool{}
		for _, id := range ids {
			if id < 0 || id >= trace.Scenarios.Len() {
				t.Fatalf("machine %d references scenario %d outside population", m, id)
			}
			if dup[id] {
				t.Errorf("machine %d lists scenario %d twice", m, id)
			}
			dup[id] = true
			seen[id] = true
		}
	}
	// Every scenario was observed on at least one machine.
	if len(seen) != trace.Scenarios.Len() {
		t.Errorf("per-machine attribution covers %d of %d scenarios", len(seen), trace.Scenarios.Len())
	}
}

func TestRecordedEventsReplayToSamePopulation(t *testing.T) {
	// Cross-validation of dcsim and clustertrace: replaying the recorded
	// event log must reconstruct exactly the simulated population.
	cfg := shortConfig()
	cfg.RecordEvents = true
	trace, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Events) == 0 {
		t.Fatal("RecordEvents produced no events")
	}
	set, perMachine, err := clustertrace.Replay(trace.Events, cfg.Machines)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != trace.Scenarios.Len() {
		t.Fatalf("replayed %d scenarios, simulation observed %d", set.Len(), trace.Scenarios.Len())
	}
	for i := 0; i < set.Len(); i++ {
		a, _ := set.Get(i)
		b, _ := trace.Scenarios.Get(i)
		if a.Key() != b.Key() {
			t.Fatalf("scenario %d differs: %s vs %s", i, a.Key(), b.Key())
		}
	}
	for m := range perMachine {
		if len(perMachine[m]) != len(trace.PerMachine[m]) {
			t.Errorf("machine %d attribution differs: %d vs %d",
				m, len(perMachine[m]), len(trace.PerMachine[m]))
		}
	}
}

func TestEventsOffByDefault(t *testing.T) {
	trace, err := Run(shortConfig())
	if err != nil {
		t.Fatal(err)
	}
	if trace.Events != nil {
		t.Error("events recorded without RecordEvents")
	}
}

func TestStatsRecordExposesMetricFamilies(t *testing.T) {
	// Regression for the metricname rewrite of Stats.record: every family
	// must be registered under its literal flare_dcsim_* name so the
	// exposition surface stays machine-checkable.
	cfg := shortConfig()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"flare_dcsim_resizes_total":          false,
		"flare_dcsim_placements_total":       false,
		"flare_dcsim_evictions_total":        false,
		"flare_dcsim_rejections_total":       false,
		"flare_dcsim_transitions_total":      false,
		"flare_dcsim_machine_failures_total": false,
		"flare_dcsim_failed_instances_total": false,
		"flare_dcsim_reschedules_total":      false,
		"flare_dcsim_scenarios":              false,
	}
	for _, fam := range obs.Default().Snapshot() {
		if _, ok := want[fam.Name]; ok {
			want[fam.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("metric family %s not registered after Run", name)
		}
	}
}
