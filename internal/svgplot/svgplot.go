// Package svgplot renders the experiment results as standalone SVG
// figures using only the standard library: line charts (Figs 7, 9, 13),
// grouped bar charts (Figs 2, 11, 12), and radar plots (Fig 10). The
// output is deliberately simple, styleless SVG that any browser renders.
package svgplot

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// palette cycles through series colours.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// Series is one named sequence of Y values.
type Series struct {
	Name   string
	Values []float64
}

// canvas accumulates SVG elements.
type canvas struct {
	w, h int
	sb   strings.Builder
}

func newCanvas(w, h int) *canvas {
	c := &canvas{w: w, h: h}
	fmt.Fprintf(&c.sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&c.sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return c
}

func (c *canvas) line(x1, y1, x2, y2 float64, colour string, width float64) {
	fmt.Fprintf(&c.sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, colour, width)
}

func (c *canvas) polyline(points [][2]float64, colour string, width float64, closePath bool) {
	var pts []string
	for _, p := range points {
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", p[0], p[1]))
	}
	tag := "polyline"
	if closePath {
		tag = "polygon"
	}
	fmt.Fprintf(&c.sb, `<%s points="%s" fill="none" stroke="%s" stroke-width="%.1f"/>`+"\n",
		tag, strings.Join(pts, " "), colour, width)
}

func (c *canvas) rect(x, y, w, h float64, colour string) {
	fmt.Fprintf(&c.sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n", x, y, w, h, colour)
}

func (c *canvas) text(x, y float64, size int, anchor, s string) {
	fmt.Fprintf(&c.sb, `<text x="%.1f" y="%.1f" font-size="%d" font-family="sans-serif" text-anchor="%s">%s</text>`+"\n",
		x, y, size, anchor, escape(s))
}

func (c *canvas) String() string {
	return c.sb.String() + "</svg>\n"
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// chartArea is the plot region inside the margins.
type chartArea struct {
	left, top, right, bottom float64
}

func (a chartArea) width() float64  { return a.right - a.left }
func (a chartArea) height() float64 { return a.bottom - a.top }

// rangeOf returns the [min, max] spanned by all series, padded slightly
// and anchored at zero for positive data.
func rangeOf(series []Series) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if lo > 0 {
		lo = 0
	}
	if hi == lo {
		hi = lo + 1
	}
	hi += 0.05 * (hi - lo)
	return lo, hi
}

// LineChart renders one or more series against shared X labels.
func LineChart(title string, xLabels []string, series []Series) (string, error) {
	if len(series) == 0 {
		return "", errors.New("svgplot: no series")
	}
	for _, s := range series {
		if len(s.Values) != len(xLabels) {
			return "", fmt.Errorf("svgplot: series %q has %d values for %d x labels", s.Name, len(s.Values), len(xLabels))
		}
	}
	if len(xLabels) < 2 {
		return "", errors.New("svgplot: need at least 2 x positions")
	}

	c := newCanvas(640, 400)
	area := chartArea{left: 60, top: 40, right: 620, bottom: 340}
	lo, hi := rangeOf(series)

	c.text(320, 24, 16, "middle", title)
	drawAxes(c, area, lo, hi, xLabels)

	for si, s := range series {
		colour := palette[si%len(palette)]
		var pts [][2]float64
		for i, v := range s.Values {
			x := area.left + float64(i)/float64(len(xLabels)-1)*area.width()
			y := area.bottom - (v-lo)/(hi-lo)*area.height()
			pts = append(pts, [2]float64{x, y})
		}
		c.polyline(pts, colour, 2, false)
		// Legend entry.
		ly := 50 + float64(si)*16
		c.rect(area.right-140, ly-8, 10, 10, colour)
		c.text(area.right-125, ly, 11, "start", s.Name)
	}
	return c.String(), nil
}

// BarChart renders grouped bars: one group per X label, one bar per
// series within a group.
func BarChart(title string, xLabels []string, series []Series) (string, error) {
	if len(series) == 0 {
		return "", errors.New("svgplot: no series")
	}
	for _, s := range series {
		if len(s.Values) != len(xLabels) {
			return "", fmt.Errorf("svgplot: series %q has %d values for %d x labels", s.Name, len(s.Values), len(xLabels))
		}
	}
	if len(xLabels) == 0 {
		return "", errors.New("svgplot: no x labels")
	}

	c := newCanvas(640, 400)
	area := chartArea{left: 60, top: 40, right: 620, bottom: 340}
	lo, hi := rangeOf(series)

	c.text(320, 24, 16, "middle", title)
	drawAxes(c, area, lo, hi, xLabels)

	groupW := area.width() / float64(len(xLabels))
	barW := groupW * 0.8 / float64(len(series))
	for si, s := range series {
		colour := palette[si%len(palette)]
		for i, v := range s.Values {
			x := area.left + float64(i)*groupW + groupW*0.1 + float64(si)*barW
			y := area.bottom - (v-lo)/(hi-lo)*area.height()
			zero := area.bottom - (0-lo)/(hi-lo)*area.height()
			top, height := y, zero-y
			if height < 0 {
				top, height = zero, -height
			}
			c.rect(x, top, barW, height, colour)
		}
		ly := 50 + float64(si)*16
		c.rect(area.right-140, ly-8, 10, 10, colour)
		c.text(area.right-125, ly, 11, "start", s.Name)
	}
	return c.String(), nil
}

// drawAxes draws the frame, Y ticks, and X labels.
func drawAxes(c *canvas, area chartArea, lo, hi float64, xLabels []string) {
	c.line(area.left, area.top, area.left, area.bottom, "#333", 1)
	c.line(area.left, area.bottom, area.right, area.bottom, "#333", 1)
	const ticks = 5
	for t := 0; t <= ticks; t++ {
		v := lo + (hi-lo)*float64(t)/ticks
		y := area.bottom - float64(t)/ticks*area.height()
		c.line(area.left-4, y, area.left, y, "#333", 1)
		c.text(area.left-8, y+4, 10, "end", trimFloat(v))
	}
	step := 1
	if len(xLabels) > 12 {
		step = len(xLabels) / 12
	}
	for i := 0; i < len(xLabels); i += step {
		x := area.left + float64(i)/math.Max(1, float64(len(xLabels)-1))*area.width()
		c.text(x, area.bottom+16, 10, "middle", xLabels[i])
	}
}

// Radar renders one polygon per row over the shared axes (the paper's
// Fig 10 cluster-centre plots).
func Radar(title string, axes []string, rows []Series) (string, error) {
	if len(axes) < 3 {
		return "", errors.New("svgplot: radar needs at least 3 axes")
	}
	if len(rows) == 0 {
		return "", errors.New("svgplot: no rows")
	}
	for _, r := range rows {
		if len(r.Values) != len(axes) {
			return "", fmt.Errorf("svgplot: row %q has %d values for %d axes", r.Name, len(r.Values), len(axes))
		}
	}

	c := newCanvas(520, 520)
	cx, cy, radius := 260.0, 270.0, 180.0
	c.text(260, 24, 16, "middle", title)

	// Value range symmetric around 0 so sign is visible.
	var maxAbs float64
	for _, r := range rows {
		for _, v := range r.Values {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}

	angle := func(i int) float64 {
		return -math.Pi/2 + 2*math.Pi*float64(i)/float64(len(axes))
	}
	point := func(i int, v float64) [2]float64 {
		// Map [-maxAbs, +maxAbs] to [0.1, 1] of the radius.
		frac := 0.1 + 0.9*(v+maxAbs)/(2*maxAbs)
		return [2]float64{cx + radius*frac*math.Cos(angle(i)), cy + radius*frac*math.Sin(angle(i))}
	}

	// Grid: axes spokes and the zero ring.
	var zero [][2]float64
	for i := range axes {
		tip := point(i, maxAbs)
		c.line(cx, cy, tip[0], tip[1], "#ddd", 1)
		c.text(tip[0], tip[1]-4, 9, "middle", axes[i])
		zero = append(zero, point(i, 0))
	}
	c.polyline(zero, "#bbb", 1, true)

	for ri, r := range rows {
		colour := palette[ri%len(palette)]
		var pts [][2]float64
		for i, v := range r.Values {
			pts = append(pts, point(i, v))
		}
		c.polyline(pts, colour, 1.5, true)
	}
	return c.String(), nil
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
