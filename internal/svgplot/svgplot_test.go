package svgplot

import (
	"encoding/xml"
	"strings"
	"testing"
)

// assertWellFormed parses the SVG as XML.
func assertWellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, svg)
		}
	}
}

func TestLineChart(t *testing.T) {
	svg, err := LineChart("Fig 7", []string{"1", "2", "3"}, []Series{
		{Name: "cumulative", Values: []float64{0.5, 0.8, 0.95}},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertWellFormed(t, svg)
	if !strings.Contains(svg, "polyline") {
		t.Error("line chart has no polyline")
	}
	if !strings.Contains(svg, "Fig 7") {
		t.Error("title missing")
	}
	if !strings.Contains(svg, "cumulative") {
		t.Error("legend missing")
	}
}

func TestLineChartValidation(t *testing.T) {
	if _, err := LineChart("t", []string{"a", "b"}, nil); err == nil {
		t.Error("no series did not error")
	}
	if _, err := LineChart("t", []string{"a"}, []Series{{Name: "s", Values: []float64{1}}}); err == nil {
		t.Error("single x position did not error")
	}
	if _, err := LineChart("t", []string{"a", "b"}, []Series{{Name: "s", Values: []float64{1}}}); err == nil {
		t.Error("length mismatch did not error")
	}
}

func TestBarChart(t *testing.T) {
	svg, err := BarChart("Fig 2", []string{"DA", "DC"}, []Series{
		{Name: "load-testing", Values: []float64{13.8, 20.4}},
		{Name: "datacenter", Values: []float64{17.3, 21.9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertWellFormed(t, svg)
	// 4 data bars + background + 2 legend swatches.
	if got := strings.Count(svg, "<rect"); got != 7 {
		t.Errorf("bar chart has %d rects, want 7", got)
	}
}

func TestBarChartNegativeValues(t *testing.T) {
	svg, err := BarChart("neg", []string{"a"}, []Series{{Name: "s", Values: []float64{-3}}})
	if err != nil {
		t.Fatal(err)
	}
	assertWellFormed(t, svg)
	// Negative heights would be invalid SVG; ensure none are emitted.
	if strings.Contains(svg, `height="-`) {
		t.Error("negative bar height emitted")
	}
}

func TestRadar(t *testing.T) {
	svg, err := Radar("Fig 10", []string{"pc0", "pc1", "pc2", "pc3"}, []Series{
		{Name: "cluster0", Values: []float64{1, -0.5, 0.2, 0}},
		{Name: "cluster1", Values: []float64{-1, 0.5, 0.8, -0.2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertWellFormed(t, svg)
	if got := strings.Count(svg, "<polygon"); got != 3 { // zero ring + 2 rows
		t.Errorf("radar has %d polygons, want 3", got)
	}
	for _, axis := range []string{"pc0", "pc3"} {
		if !strings.Contains(svg, axis) {
			t.Errorf("axis label %s missing", axis)
		}
	}
}

func TestRadarValidation(t *testing.T) {
	if _, err := Radar("t", []string{"a", "b"}, []Series{{Name: "r", Values: []float64{1, 2}}}); err == nil {
		t.Error("2 axes did not error")
	}
	if _, err := Radar("t", []string{"a", "b", "c"}, nil); err == nil {
		t.Error("no rows did not error")
	}
	if _, err := Radar("t", []string{"a", "b", "c"}, []Series{{Name: "r", Values: []float64{1}}}); err == nil {
		t.Error("length mismatch did not error")
	}
}

func TestEscape(t *testing.T) {
	svg, err := LineChart(`<&"> title`, []string{"a", "b"}, []Series{
		{Name: "s", Values: []float64{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertWellFormed(t, svg)
	if strings.Contains(svg, `<&"> title`) {
		t.Error("special characters not escaped")
	}
}

func TestRadarAllZeroValues(t *testing.T) {
	svg, err := Radar("z", []string{"a", "b", "c"}, []Series{{Name: "r", Values: []float64{0, 0, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	assertWellFormed(t, svg)
	if strings.Contains(svg, "NaN") {
		t.Error("all-zero radar produced NaN coordinates")
	}
}
