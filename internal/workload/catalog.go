package workload

import "fmt"

// HP job short codes (Table 3).
const (
	DataAnalytics     = "DA"  // Apache Hadoop with Mahout, TrainNB phase
	DataCaching       = "DC"  // memcached
	DataServing       = "DS"  // Apache Cassandra
	GraphAnalytics    = "GA"  // Apache Spark
	InMemoryAnalytics = "IA"  // Apache Spark
	MediaStreaming    = "MS"  // Nginx
	WebSearch         = "WSC" // Apache Solr
	WebServing        = "WSV" // MySQL + memcached + Nginx + PHP
)

// LP job names (SPEC CPU2006 subset; four copies fill a 4-vCPU container).
const (
	Perlbench  = "perlbench"  // 400.perlbench
	Sjeng      = "sjeng"      // 458.sjeng
	Libquantum = "libquantum" // 462.libquantum
	Xalancbmk  = "xalancbmk"  // 483.xalancbmk
	Omnetpp    = "omnetpp"    // 471.omnetpp
	Mcf        = "mcf"        // 429.mcf
)

// Catalog is an immutable set of job profiles indexed by name.
type Catalog struct {
	profiles []Profile
	byName   map[string]int
}

// NewCatalog builds a catalog from the given profiles, validating each.
// It returns an error on an invalid profile or a duplicate name.
func NewCatalog(profiles []Profile) (*Catalog, error) {
	c := &Catalog{
		profiles: make([]Profile, len(profiles)),
		byName:   make(map[string]int, len(profiles)),
	}
	copy(c.profiles, profiles)
	for i, p := range c.profiles {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if _, dup := c.byName[p.Name]; dup {
			return nil, fmt.Errorf("workload: duplicate profile name %q", p.Name)
		}
		c.byName[p.Name] = i
	}
	return c, nil
}

// Lookup returns the profile with the given name.
func (c *Catalog) Lookup(name string) (Profile, error) {
	i, ok := c.byName[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown job %q", name)
	}
	return c.profiles[i], nil
}

// Profiles returns a copy of all profiles in catalog order.
func (c *Catalog) Profiles() []Profile {
	out := make([]Profile, len(c.profiles))
	copy(out, c.profiles)
	return out
}

// HPJobs returns the High Priority profiles in catalog order.
func (c *Catalog) HPJobs() []Profile {
	var out []Profile
	for _, p := range c.profiles {
		if p.Class == ClassHP {
			out = append(out, p)
		}
	}
	return out
}

// LPJobs returns the Low Priority profiles in catalog order.
func (c *Catalog) LPJobs() []Profile {
	var out []Profile
	for _, p := range c.profiles {
		if p.Class == ClassLP {
			out = append(out, p)
		}
	}
	return out
}

// Len returns the number of profiles.
func (c *Catalog) Len() int { return len(c.profiles) }

// DefaultCatalog returns the paper's Table 3 job mix: eight CloudSuite HP
// services plus six SPEC CPU2006 LP jobs. Profile numbers are calibrated
// against the published CloudSuite and SPEC CPU2006 characterisation
// studies; MIPS figures assume one 4-vCPU instance alone on the default
// machine shape at max clock.
//
// The function builds a fresh catalog on every call so callers can never
// alias each other's state.
func DefaultCatalog() *Catalog {
	c, err := NewCatalog(defaultProfiles())
	if err != nil {
		// The default profiles are compile-time constants validated by
		// tests; failure here is a programming error.
		panic(fmt.Sprintf("workload: default catalog invalid: %v", err))
	}
	return c
}

func defaultProfiles() []Profile {
	return []Profile{
		// ------------------------- HP services -------------------------
		{
			Name: DataAnalytics, Long: "Data Analytics (Hadoop/Mahout TrainNB)", Class: ClassHP,
			MemoryGB: 16, InherentMIPS: 10400, BaseIPC: 0.90,
			WorkingSetMB: 20, LLCAPKI: 14, ColdMissFrac: 0.10, MissCurve: 1.6,
			FrontendBound: 0.18, BadSpeculation: 0.07, BackendBound: 0.47, Retiring: 0.28,
			BranchMPKI: 4.2, L1MPKI: 28, L2MPKI: 16, ALUFrac: 0.42,
			FreqSensitivity: 0.55, SMTYield: 0.66,
			PhaseVariability: 0.30,
			NetworkMbps:      180, DiskMBps: 55,
			CtxSwitchPerSec: 2800, PageFaultPerSec: 900,
		},
		{
			Name: DataCaching, Long: "Data Caching (memcached)", Class: ClassHP,
			MemoryGB: 4, InherentMIPS: 8100, BaseIPC: 0.70,
			WorkingSetMB: 8, LLCAPKI: 10, ColdMissFrac: 0.22, MissCurve: 2.2,
			FrontendBound: 0.34, BadSpeculation: 0.06, BackendBound: 0.34, Retiring: 0.26,
			BranchMPKI: 3.0, L1MPKI: 22, L2MPKI: 11, ALUFrac: 0.30,
			FreqSensitivity: 0.45, SMTYield: 0.74,
			PhaseVariability: 0.65,
			NetworkMbps:      950, DiskMBps: 2,
			CtxSwitchPerSec: 21000, PageFaultPerSec: 120,
		},
		{
			Name: DataServing, Long: "Data Serving (Cassandra)", Class: ClassHP,
			MemoryGB: 16, InherentMIPS: 7500, BaseIPC: 0.65,
			WorkingSetMB: 24, LLCAPKI: 19, ColdMissFrac: 0.14, MissCurve: 1.4,
			FrontendBound: 0.26, BadSpeculation: 0.07, BackendBound: 0.42, Retiring: 0.25,
			BranchMPKI: 4.8, L1MPKI: 31, L2MPKI: 18, ALUFrac: 0.33,
			FreqSensitivity: 0.42, SMTYield: 0.70,
			PhaseVariability: 0.55,
			NetworkMbps:      420, DiskMBps: 140,
			CtxSwitchPerSec: 9500, PageFaultPerSec: 1500,
		},
		{
			Name: GraphAnalytics, Long: "Graph Analytics (Spark)", Class: ClassHP,
			MemoryGB: 4, InherentMIPS: 6400, BaseIPC: 0.55,
			WorkingSetMB: 40, LLCAPKI: 26, ColdMissFrac: 0.12, MissCurve: 1.1,
			FrontendBound: 0.12, BadSpeculation: 0.05, BackendBound: 0.60, Retiring: 0.23,
			BranchMPKI: 6.5, L1MPKI: 38, L2MPKI: 25, ALUFrac: 0.36,
			FreqSensitivity: 0.30, SMTYield: 0.80,
			PhaseVariability: 0.25,
			NetworkMbps:      160, DiskMBps: 18,
			CtxSwitchPerSec: 3600, PageFaultPerSec: 2400,
		},
		{
			Name: InMemoryAnalytics, Long: "In-Memory Analytics (Spark)", Class: ClassHP,
			MemoryGB: 4, InherentMIPS: 9300, BaseIPC: 0.80,
			WorkingSetMB: 30, LLCAPKI: 17, ColdMissFrac: 0.10, MissCurve: 1.5,
			FrontendBound: 0.14, BadSpeculation: 0.06, BackendBound: 0.50, Retiring: 0.30,
			BranchMPKI: 3.4, L1MPKI: 26, L2MPKI: 14, ALUFrac: 0.48,
			FreqSensitivity: 0.60, SMTYield: 0.68,
			PhaseVariability: 0.30,
			NetworkMbps:      210, DiskMBps: 8,
			CtxSwitchPerSec: 3100, PageFaultPerSec: 1100,
		},
		{
			Name: MediaStreaming, Long: "Media Streaming (Nginx)", Class: ClassHP,
			MemoryGB: 8, InherentMIPS: 10900, BaseIPC: 0.94,
			WorkingSetMB: 5, LLCAPKI: 6, ColdMissFrac: 0.30, MissCurve: 2.6,
			FrontendBound: 0.24, BadSpeculation: 0.05, BackendBound: 0.33, Retiring: 0.38,
			BranchMPKI: 2.1, L1MPKI: 14, L2MPKI: 6, ALUFrac: 0.26,
			FreqSensitivity: 0.35, SMTYield: 0.82,
			PhaseVariability: 0.70,
			NetworkMbps:      2400, DiskMBps: 260,
			CtxSwitchPerSec: 15000, PageFaultPerSec: 60,
		},
		{
			Name: WebSearch, Long: "Web Search (Solr)", Class: ClassHP,
			MemoryGB: 12, InherentMIPS: 8700, BaseIPC: 0.75,
			WorkingSetMB: 28, LLCAPKI: 13, ColdMissFrac: 0.12, MissCurve: 1.7,
			FrontendBound: 0.36, BadSpeculation: 0.08, BackendBound: 0.32, Retiring: 0.24,
			BranchMPKI: 5.6, L1MPKI: 30, L2MPKI: 15, ALUFrac: 0.34,
			FreqSensitivity: 0.58, SMTYield: 0.69,
			PhaseVariability: 0.60,
			NetworkMbps:      310, DiskMBps: 35,
			CtxSwitchPerSec: 7200, PageFaultPerSec: 700,
		},
		{
			Name: WebServing, Long: "Web Serving (MySQL/memcached/Nginx/PHP)", Class: ClassHP,
			MemoryGB: 8, InherentMIPS: 7000, BaseIPC: 0.60,
			WorkingSetMB: 12, LLCAPKI: 9, ColdMissFrac: 0.18, MissCurve: 1.9,
			FrontendBound: 0.38, BadSpeculation: 0.09, BackendBound: 0.30, Retiring: 0.23,
			BranchMPKI: 7.1, L1MPKI: 27, L2MPKI: 12, ALUFrac: 0.28,
			FreqSensitivity: 0.52, SMTYield: 0.72,
			PhaseVariability: 0.65,
			NetworkMbps:      520, DiskMBps: 45,
			CtxSwitchPerSec: 18500, PageFaultPerSec: 400,
		},

		// ---------------------- LP batch jobs -------------------------
		// Profiles describe one 4-vCPU container running four copies.
		{
			Name: Perlbench, Long: "400.perlbench x4", Class: ClassLP,
			MemoryGB: 2, InherentMIPS: 17400, BaseIPC: 1.50,
			WorkingSetMB: 4, LLCAPKI: 2.5, ColdMissFrac: 0.08, MissCurve: 2.8,
			FrontendBound: 0.22, BadSpeculation: 0.12, BackendBound: 0.18, Retiring: 0.48,
			BranchMPKI: 8.8, L1MPKI: 17, L2MPKI: 4, ALUFrac: 0.58,
			FreqSensitivity: 0.90, SMTYield: 0.60,
			PhaseVariability: 0.10,
			NetworkMbps:      0, DiskMBps: 1,
			CtxSwitchPerSec: 40, PageFaultPerSec: 30,
		},
		{
			Name: Sjeng, Long: "458.sjeng x4", Class: ClassLP,
			MemoryGB: 1, InherentMIPS: 13900, BaseIPC: 1.20,
			WorkingSetMB: 2, LLCAPKI: 1.4, ColdMissFrac: 0.06, MissCurve: 3.0,
			FrontendBound: 0.16, BadSpeculation: 0.20, BackendBound: 0.18, Retiring: 0.46,
			BranchMPKI: 11.5, L1MPKI: 9, L2MPKI: 2, ALUFrac: 0.62,
			FreqSensitivity: 0.94, SMTYield: 0.58,
			PhaseVariability: 0.05,
			NetworkMbps:      0, DiskMBps: 0.5,
			CtxSwitchPerSec: 30, PageFaultPerSec: 15,
		},
		{
			Name: Libquantum, Long: "462.libquantum x4", Class: ClassLP,
			MemoryGB: 1, InherentMIPS: 5800, BaseIPC: 0.50,
			WorkingSetMB: 64, LLCAPKI: 34, ColdMissFrac: 0.72, MissCurve: 0.7,
			FrontendBound: 0.05, BadSpeculation: 0.02, BackendBound: 0.73, Retiring: 0.20,
			BranchMPKI: 1.2, L1MPKI: 44, L2MPKI: 36, ALUFrac: 0.22,
			FreqSensitivity: 0.15, SMTYield: 0.88,
			PhaseVariability: 0.05,
			NetworkMbps:      0, DiskMBps: 0.5,
			CtxSwitchPerSec: 25, PageFaultPerSec: 50,
		},
		{
			Name: Xalancbmk, Long: "483.xalancbmk x4", Class: ClassLP,
			MemoryGB: 2, InherentMIPS: 12800, BaseIPC: 1.10,
			WorkingSetMB: 12, LLCAPKI: 10, ColdMissFrac: 0.10, MissCurve: 1.8,
			FrontendBound: 0.20, BadSpeculation: 0.10, BackendBound: 0.32, Retiring: 0.38,
			BranchMPKI: 6.4, L1MPKI: 24, L2MPKI: 9, ALUFrac: 0.44,
			FreqSensitivity: 0.72, SMTYield: 0.64,
			PhaseVariability: 0.15,
			NetworkMbps:      0, DiskMBps: 1,
			CtxSwitchPerSec: 35, PageFaultPerSec: 60,
		},
		{
			Name: Omnetpp, Long: "471.omnetpp x4", Class: ClassLP,
			MemoryGB: 2, InherentMIPS: 5200, BaseIPC: 0.45,
			WorkingSetMB: 36, LLCAPKI: 21, ColdMissFrac: 0.15, MissCurve: 1.0,
			FrontendBound: 0.10, BadSpeculation: 0.08, BackendBound: 0.62, Retiring: 0.20,
			BranchMPKI: 7.9, L1MPKI: 33, L2MPKI: 20, ALUFrac: 0.30,
			FreqSensitivity: 0.28, SMTYield: 0.82,
			PhaseVariability: 0.20,
			NetworkMbps:      0, DiskMBps: 0.5,
			CtxSwitchPerSec: 28, PageFaultPerSec: 80,
		},
		{
			Name: Mcf, Long: "429.mcf x4", Class: ClassLP,
			MemoryGB: 4, InherentMIPS: 4100, BaseIPC: 0.35,
			WorkingSetMB: 48, LLCAPKI: 29, ColdMissFrac: 0.25, MissCurve: 0.9,
			FrontendBound: 0.05, BadSpeculation: 0.04, BackendBound: 0.74, Retiring: 0.17,
			BranchMPKI: 9.3, L1MPKI: 41, L2MPKI: 29, ALUFrac: 0.24,
			FreqSensitivity: 0.18, SMTYield: 0.86,
			PhaseVariability: 0.10,
			NetworkMbps:      0, DiskMBps: 0.5,
			CtxSwitchPerSec: 22, PageFaultPerSec: 120,
		},
	}
}
