package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestDefaultCatalogShape(t *testing.T) {
	c := DefaultCatalog()
	if got := c.Len(); got != 14 {
		t.Fatalf("catalog size = %d, want 14 (8 HP + 6 LP)", got)
	}
	if got := len(c.HPJobs()); got != 8 {
		t.Errorf("HP jobs = %d, want 8", got)
	}
	if got := len(c.LPJobs()); got != 6 {
		t.Errorf("LP jobs = %d, want 6", got)
	}
}

func TestDefaultCatalogAllValid(t *testing.T) {
	for _, p := range DefaultCatalog().Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestDefaultCatalogCoversTable3(t *testing.T) {
	c := DefaultCatalog()
	wantHP := []string{DataAnalytics, DataCaching, DataServing, GraphAnalytics,
		InMemoryAnalytics, MediaStreaming, WebSearch, WebServing}
	for _, name := range wantHP {
		p, err := c.Lookup(name)
		if err != nil {
			t.Errorf("missing HP job %s: %v", name, err)
			continue
		}
		if p.Class != ClassHP {
			t.Errorf("job %s class = %v, want HP", name, p.Class)
		}
	}
	wantLP := []string{Perlbench, Sjeng, Libquantum, Xalancbmk, Omnetpp, Mcf}
	for _, name := range wantLP {
		p, err := c.Lookup(name)
		if err != nil {
			t.Errorf("missing LP job %s: %v", name, err)
			continue
		}
		if p.Class != ClassLP {
			t.Errorf("job %s class = %v, want LP", name, p.Class)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := DefaultCatalog().Lookup("nosuchjob"); err == nil {
		t.Error("Lookup of unknown job did not error")
	}
}

func TestNewCatalogRejectsDuplicates(t *testing.T) {
	p := defaultProfiles()[0]
	if _, err := NewCatalog([]Profile{p, p}); err == nil {
		t.Error("duplicate profiles did not error")
	}
}

func TestNewCatalogRejectsInvalid(t *testing.T) {
	p := defaultProfiles()[0]
	p.BaseIPC = -1
	if _, err := NewCatalog([]Profile{p}); err == nil {
		t.Error("invalid profile did not error")
	}
}

func TestValidateCatchesEachViolation(t *testing.T) {
	base := defaultProfiles()[0]
	tests := []struct {
		name   string
		mutate func(*Profile)
		want   string
	}{
		{"empty-name", func(p *Profile) { p.Name = "" }, "empty name"},
		{"bad-class", func(p *Profile) { p.Class = 0 }, "invalid class"},
		{"bad-mips", func(p *Profile) { p.InherentMIPS = 0 }, "inherent MIPS"},
		{"bad-ipc", func(p *Profile) { p.BaseIPC = 0 }, "base IPC"},
		{"bad-ws", func(p *Profile) { p.WorkingSetMB = 0 }, "working set"},
		{"bad-apki", func(p *Profile) { p.LLCAPKI = -1 }, "LLC APKI"},
		{"bad-coldmiss", func(p *Profile) { p.ColdMissFrac = 1 }, "cold-miss"},
		{"bad-curve", func(p *Profile) { p.MissCurve = 0 }, "miss-curve"},
		{"bad-freqsens", func(p *Profile) { p.FreqSensitivity = 1.5 }, "frequency sensitivity"},
		{"bad-smt", func(p *Profile) { p.SMTYield = 0.4 }, "SMT yield"},
		{"bad-topdown", func(p *Profile) { p.Retiring += 0.5 }, "top-down"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base
			tt.mutate(&p)
			err := p.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid profile")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestProfilesReturnsCopy(t *testing.T) {
	c := DefaultCatalog()
	ps := c.Profiles()
	ps[0].Name = "mutated"
	if got, _ := c.Lookup(DataAnalytics); got.Name != DataAnalytics {
		t.Error("Profiles() exposed internal state")
	}
}

func TestHPJobsDistinctMicroarchSignatures(t *testing.T) {
	// The clustering pipeline needs jobs to be distinguishable; assert no
	// two HP jobs share the same (WorkingSetMB, LLCAPKI, BaseIPC) triple.
	seen := map[[3]float64]string{}
	for _, p := range DefaultCatalog().HPJobs() {
		key := [3]float64{p.WorkingSetMB, p.LLCAPKI, p.BaseIPC}
		if prev, dup := seen[key]; dup {
			t.Errorf("jobs %s and %s have identical signatures", prev, p.Name)
		}
		seen[key] = p.Name
	}
}

func TestClassString(t *testing.T) {
	if ClassHP.String() != "HP" || ClassLP.String() != "LP" {
		t.Error("Class.String() wrong")
	}
	if got := Class(9).String(); got != "Class(9)" {
		t.Errorf("unknown class String() = %q", got)
	}
}

func TestCatalogJSONRoundTrip(t *testing.T) {
	orig := DefaultCatalog()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round trip changed size: %d -> %d", orig.Len(), back.Len())
	}
	for _, p := range orig.Profiles() {
		q, err := back.Lookup(p.Name)
		if err != nil {
			t.Fatalf("job %s lost in round trip", p.Name)
		}
		if q != p {
			t.Errorf("job %s changed in round trip:\n%+v\n%+v", p.Name, p, q)
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{broken")); err == nil {
		t.Error("garbage did not error")
	}
	if _, err := ReadJSON(strings.NewReader(`[{"name":"x","class":"MEDIUM"}]`)); err == nil {
		t.Error("unknown class did not error")
	}
	// Structurally valid JSON but invalid profile values.
	if _, err := ReadJSON(strings.NewReader(`[{"name":"x","class":"HP","base_ipc":-1}]`)); err == nil {
		t.Error("invalid profile values did not error")
	}
}
