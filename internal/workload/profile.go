// Package workload defines the datacenter job catalog: the eight
// CloudSuite-style High Priority (HP) services and six SPEC CPU2006-style
// Low Priority (LP) batch jobs of the paper's Table 3, each with a
// microarchitectural profile that drives the contention model.
//
// A profile describes one *instance* of a job: a 4-vCPU container, the
// scheduling unit of the simulated datacenter (Sec 5.1). Jobs needing more
// compute run multiple identical instances.
package workload

import (
	"errors"
	"fmt"
)

// Class distinguishes managed High Priority services from free-quota Low
// Priority batch jobs. Only HP performance counts toward the datacenter
// performance metric (Sec 5.1, "Defining the performance").
type Class int

// Job classes.
const (
	ClassHP Class = iota + 1 // High Priority: performance is managed
	ClassLP                  // Low Priority: runs on free quota, ignored in perf
)

// String returns "HP" or "LP".
func (c Class) String() string {
	switch c {
	case ClassHP:
		return "HP"
	case ClassLP:
		return "LP"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// InstanceVCPUs is the vCPU allocation of every job instance. The paper's
// datacenter schedules fixed-size 4-vCPU containers, which is what gives
// machine occupancy its step-like shape (Fig 3a).
const InstanceVCPUs = 4

// Profile is the microarchitectural and resource signature of one job
// instance. The fields feed the perfmodel contention model; they are
// calibrated to published characterisations of CloudSuite [Ferdman et al.,
// ASPLOS'12] and SPEC CPU2006 [Phansalkar et al., ISCA'07].
type Profile struct {
	Name  string // short code, e.g. "DC" or "mcf"
	Long  string // human-readable name, e.g. "Data Caching (memcached)"
	Class Class  // HP or LP

	MemoryGB float64 // DRAM footprint per instance

	// Core execution profile.
	InherentMIPS float64 // throughput per instance, alone on an empty default machine
	BaseIPC      float64 // per-core IPC with a private LLC and no contention

	// Cache behaviour.
	WorkingSetMB float64 // LLC working-set size per instance
	LLCAPKI      float64 // LLC accesses per kilo-instruction
	ColdMissFrac float64 // compulsory-miss floor of the miss-ratio curve in [0,1)
	MissCurve    float64 // steepness of the miss-ratio curve (>0); higher = more cache-friendly

	// Top-down-style bottleneck fractions; should sum to roughly 1.
	FrontendBound  float64 // fetch/decode stalls
	BadSpeculation float64 // wasted slots from mispredicts
	BackendBound   float64 // core + memory stalls
	Retiring       float64 // useful work

	// Secondary counters.
	BranchMPKI float64 // branch mispredictions per kilo-instruction
	L1MPKI     float64 // L1D misses per kilo-instruction
	L2MPKI     float64 // L2 misses per kilo-instruction
	ALUFrac    float64 // fraction of uops using ALU ports (drives SMT contention)

	// Scaling behaviour.
	FreqSensitivity float64 // in [0,1]: fraction of runtime that scales with clock
	SMTYield        float64 // in (0.5,1]: per-thread throughput multiplier when sharing a core

	// PhaseVariability in [0,1] is the amplitude of the job's temporal
	// load swings (diurnal request rates for serving jobs, phase changes
	// for batch jobs). It drives the optional ±stddev "temporal" metrics
	// of paper Sec 4.1.
	PhaseVariability float64

	// I/O demands per instance.
	NetworkMbps float64 // NIC bandwidth demand
	DiskMBps    float64 // storage bandwidth demand

	// OS-level rates per second, reported by the software monitors.
	CtxSwitchPerSec float64
	PageFaultPerSec float64
}

// Validate checks the profile invariants the contention model relies on.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return errors.New("workload: profile has empty name")
	case p.Class != ClassHP && p.Class != ClassLP:
		return fmt.Errorf("workload: profile %s has invalid class %d", p.Name, p.Class)
	case p.InherentMIPS <= 0:
		return fmt.Errorf("workload: profile %s has non-positive inherent MIPS", p.Name)
	case p.BaseIPC <= 0:
		return fmt.Errorf("workload: profile %s has non-positive base IPC", p.Name)
	case p.WorkingSetMB <= 0:
		return fmt.Errorf("workload: profile %s has non-positive working set", p.Name)
	case p.LLCAPKI < 0:
		return fmt.Errorf("workload: profile %s has negative LLC APKI", p.Name)
	case p.ColdMissFrac < 0 || p.ColdMissFrac >= 1:
		return fmt.Errorf("workload: profile %s has cold-miss fraction %v outside [0,1)", p.Name, p.ColdMissFrac)
	case p.MissCurve <= 0:
		return fmt.Errorf("workload: profile %s has non-positive miss-curve steepness", p.Name)
	case p.FreqSensitivity < 0 || p.FreqSensitivity > 1:
		return fmt.Errorf("workload: profile %s has frequency sensitivity %v outside [0,1]", p.Name, p.FreqSensitivity)
	case p.SMTYield <= 0.5 || p.SMTYield > 1:
		return fmt.Errorf("workload: profile %s has SMT yield %v outside (0.5,1]", p.Name, p.SMTYield)
	case p.PhaseVariability < 0 || p.PhaseVariability > 1:
		return fmt.Errorf("workload: profile %s has phase variability %v outside [0,1]", p.Name, p.PhaseVariability)
	}
	sum := p.FrontendBound + p.BadSpeculation + p.BackendBound + p.Retiring
	if sum < 0.95 || sum > 1.05 {
		return fmt.Errorf("workload: profile %s top-down fractions sum to %v, want ~1", p.Name, sum)
	}
	return nil
}

// IsHP reports whether the profile is a High Priority service.
func (p Profile) IsHP() bool { return p.Class == ClassHP }
