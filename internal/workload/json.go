package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// profileJSON is the serialisation schema of one job profile. Field names
// follow the Profile documentation; see DefaultCatalog for reference
// values.
type profileJSON struct {
	Name             string  `json:"name"`
	Long             string  `json:"long,omitempty"`
	Class            string  `json:"class"` // "HP" or "LP"
	MemoryGB         float64 `json:"memory_gb"`
	InherentMIPS     float64 `json:"inherent_mips"`
	BaseIPC          float64 `json:"base_ipc"`
	WorkingSetMB     float64 `json:"working_set_mb"`
	LLCAPKI          float64 `json:"llc_apki"`
	ColdMissFrac     float64 `json:"cold_miss_frac"`
	MissCurve        float64 `json:"miss_curve"`
	FrontendBound    float64 `json:"frontend_bound"`
	BadSpeculation   float64 `json:"bad_speculation"`
	BackendBound     float64 `json:"backend_bound"`
	Retiring         float64 `json:"retiring"`
	BranchMPKI       float64 `json:"branch_mpki"`
	L1MPKI           float64 `json:"l1_mpki"`
	L2MPKI           float64 `json:"l2_mpki"`
	ALUFrac          float64 `json:"alu_frac"`
	FreqSensitivity  float64 `json:"freq_sensitivity"`
	SMTYield         float64 `json:"smt_yield"`
	PhaseVariability float64 `json:"phase_variability"`
	NetworkMbps      float64 `json:"network_mbps"`
	DiskMBps         float64 `json:"disk_mbps"`
	CtxSwitchPerSec  float64 `json:"ctx_switch_per_sec"`
	PageFaultPerSec  float64 `json:"page_fault_per_sec"`
}

func toJSON(p Profile) profileJSON {
	return profileJSON{
		Name: p.Name, Long: p.Long, Class: p.Class.String(),
		MemoryGB: p.MemoryGB, InherentMIPS: p.InherentMIPS, BaseIPC: p.BaseIPC,
		WorkingSetMB: p.WorkingSetMB, LLCAPKI: p.LLCAPKI,
		ColdMissFrac: p.ColdMissFrac, MissCurve: p.MissCurve,
		FrontendBound: p.FrontendBound, BadSpeculation: p.BadSpeculation,
		BackendBound: p.BackendBound, Retiring: p.Retiring,
		BranchMPKI: p.BranchMPKI, L1MPKI: p.L1MPKI, L2MPKI: p.L2MPKI,
		ALUFrac: p.ALUFrac, FreqSensitivity: p.FreqSensitivity,
		SMTYield: p.SMTYield, PhaseVariability: p.PhaseVariability,
		NetworkMbps: p.NetworkMbps, DiskMBps: p.DiskMBps,
		CtxSwitchPerSec: p.CtxSwitchPerSec, PageFaultPerSec: p.PageFaultPerSec,
	}
}

func fromJSON(j profileJSON) (Profile, error) {
	var class Class
	switch j.Class {
	case "HP":
		class = ClassHP
	case "LP":
		class = ClassLP
	default:
		return Profile{}, fmt.Errorf("workload: profile %q has class %q, want HP or LP", j.Name, j.Class)
	}
	return Profile{
		Name: j.Name, Long: j.Long, Class: class,
		MemoryGB: j.MemoryGB, InherentMIPS: j.InherentMIPS, BaseIPC: j.BaseIPC,
		WorkingSetMB: j.WorkingSetMB, LLCAPKI: j.LLCAPKI,
		ColdMissFrac: j.ColdMissFrac, MissCurve: j.MissCurve,
		FrontendBound: j.FrontendBound, BadSpeculation: j.BadSpeculation,
		BackendBound: j.BackendBound, Retiring: j.Retiring,
		BranchMPKI: j.BranchMPKI, L1MPKI: j.L1MPKI, L2MPKI: j.L2MPKI,
		ALUFrac: j.ALUFrac, FreqSensitivity: j.FreqSensitivity,
		SMTYield: j.SMTYield, PhaseVariability: j.PhaseVariability,
		NetworkMbps: j.NetworkMbps, DiskMBps: j.DiskMBps,
		CtxSwitchPerSec: j.CtxSwitchPerSec, PageFaultPerSec: j.PageFaultPerSec,
	}, nil
}

// WriteJSON serialises the catalog so site-specific job profiles can be
// versioned and shared.
func (c *Catalog) WriteJSON(w io.Writer) error {
	out := make([]profileJSON, 0, c.Len())
	for _, p := range c.Profiles() {
		out = append(out, toJSON(p))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("workload: encoding catalog: %w", err)
	}
	return nil
}

// ReadJSON deserialises and validates a catalog written by WriteJSON (or
// hand-authored for a site's own jobs).
func ReadJSON(r io.Reader) (*Catalog, error) {
	var raw []profileJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("workload: decoding catalog: %w", err)
	}
	profiles := make([]Profile, 0, len(raw))
	for _, j := range raw {
		p, err := fromJSON(j)
		if err != nil {
			return nil, err
		}
		profiles = append(profiles, p)
	}
	return NewCatalog(profiles)
}
