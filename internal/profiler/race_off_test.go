//go:build !race

package profiler

const raceEnabled = false
