//go:build race

package profiler

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under -race because instrumentation inflates
// the counts.
const raceEnabled = true
