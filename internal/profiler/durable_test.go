package profiler

import (
	"testing"

	"flare/internal/metricdb"
	"flare/internal/scenario"
	"flare/internal/store"
	"flare/internal/workload"
)

// TestStoreDurableRoundTrip persists a dataset through the store-backed
// database, reopens the directory cold, and checks the matrix loads back
// cell-for-cell identical — the pipeline-level durability guarantee.
func TestStoreDurableRoundTrip(t *testing.T) {
	set := scenario.NewSet()
	a, _ := scenario.New([]scenario.Placement{{Job: workload.DataCaching, Instances: 2}})
	b, _ := scenario.New([]scenario.Placement{{Job: workload.Mcf, Instances: 1}})
	set.Add(a)
	set.Add(b)
	ds := collect(t, set, DefaultOptions())

	dir := t.TempDir()
	st, err := store.Open(dir, store.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	db, err := metricdb.OpenDB(st)
	if err != nil {
		t.Fatal(err)
	}
	if Stored(db) {
		t.Fatal("fresh database reports Stored")
	}
	if err := ds.Store(db); err != nil {
		t.Fatal(err)
	}
	if !Stored(db) {
		t.Error("populated database does not report Stored")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold reopen: the journaled rows must rebuild the same matrix.
	st2, err := store.Open(dir, store.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	db2, err := metricdb.OpenDB(st2)
	if err != nil {
		t.Fatal(err)
	}
	if !Stored(db2) {
		t.Fatal("reopened database does not report Stored")
	}

	shell := &Dataset{
		Scenarios: set,
		Catalog:   ds.Catalog,
		Config:    ds.Config,
		Matrix:    ds.Matrix.Clone(),
	}
	for i := 0; i < shell.Matrix.Rows(); i++ {
		for j := 0; j < shell.Matrix.Cols(); j++ {
			shell.Matrix.Set(i, j, 0)
		}
	}
	if err := shell.LoadMatrix(db2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Matrix.Rows(); i++ {
		for j := 0; j < ds.Matrix.Cols(); j++ {
			if shell.Matrix.At(i, j) != ds.Matrix.At(i, j) {
				t.Fatalf("cell (%d,%d) lost across durable round trip", i, j)
			}
		}
	}
}

// TestStoreDeterministicRowOrder stores the same dataset into two fresh
// databases and checks the job_perf row sequences match exactly — map
// iteration must not leak into the journaled order.
func TestStoreDeterministicRowOrder(t *testing.T) {
	set := scenario.NewSet()
	sc, _ := scenario.New([]scenario.Placement{
		{Job: workload.DataCaching, Instances: 1},
		{Job: workload.WebSearch, Instances: 1},
		{Job: workload.Mcf, Instances: 2},
	})
	set.Add(sc)
	ds := collect(t, set, DefaultOptions())

	rowSeq := func() []string {
		db := metricdb.NewDB()
		if err := ds.Store(db); err != nil {
			t.Fatal(err)
		}
		tb, err := db.Table("job_perf")
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, row := range tb.Select(nil) {
			out = append(out, row[1].S)
		}
		return out
	}
	first := rowSeq()
	for trial := 0; trial < 10; trial++ {
		got := rowSeq()
		if len(got) != len(first) {
			t.Fatalf("trial %d: %d rows vs %d", trial, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("trial %d: row %d job %q, want %q", trial, i, got[i], first[i])
			}
		}
	}
}
