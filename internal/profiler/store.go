package profiler

import (
	"fmt"

	"flare/internal/metricdb"
)

// Table names used in the metric database.
const (
	samplesTable = "samples"  // (scenario, metric, value)
	jobPerfTable = "job_perf" // (scenario, job, mips)
)

// Store writes the dataset into the metric database, creating the
// "samples" and "job_perf" tables (the paper's relational recording of
// collected statistics).
func (ds *Dataset) Store(db *metricdb.DB) error {
	samples, err := db.CreateTable(samplesTable, []metricdb.Column{
		{Name: "scenario", Type: metricdb.TypeInt},
		{Name: "metric", Type: metricdb.TypeString},
		{Name: "value", Type: metricdb.TypeFloat},
	})
	if err != nil {
		return fmt.Errorf("profiler: %w", err)
	}
	jobPerf, err := db.CreateTable(jobPerfTable, []metricdb.Column{
		{Name: "scenario", Type: metricdb.TypeInt},
		{Name: "job", Type: metricdb.TypeString},
		{Name: "mips", Type: metricdb.TypeFloat},
	})
	if err != nil {
		return fmt.Errorf("profiler: %w", err)
	}

	names := ds.Catalog.Names()
	for id := 0; id < ds.Scenarios.Len(); id++ {
		for col, name := range names {
			err := samples.Insert(metricdb.Row{
				metricdb.Int(int64(id)),
				metricdb.String(name),
				metricdb.Float(ds.Matrix.At(id, col)),
			})
			if err != nil {
				return fmt.Errorf("profiler: %w", err)
			}
		}
		for job, mips := range ds.JobMIPS[id] {
			err := jobPerf.Insert(metricdb.Row{
				metricdb.Int(int64(id)),
				metricdb.String(job),
				metricdb.Float(mips),
			})
			if err != nil {
				return fmt.Errorf("profiler: %w", err)
			}
		}
	}
	return nil
}

// LoadMatrix reads the "samples" table back into the dataset's matrix
// layout, validating that every (scenario, metric) cell is present.
func (ds *Dataset) LoadMatrix(db *metricdb.DB) error {
	samples, err := db.Table(samplesTable)
	if err != nil {
		return fmt.Errorf("profiler: %w", err)
	}
	seen := 0
	for _, row := range samples.Select(nil) {
		id := int(row[0].I)
		col := ds.Catalog.Index(row[1].S)
		if col < 0 {
			return fmt.Errorf("profiler: samples table has unknown metric %q", row[1].S)
		}
		if id < 0 || id >= ds.Scenarios.Len() {
			return fmt.Errorf("profiler: samples table has out-of-range scenario %d", id)
		}
		ds.Matrix.Set(id, col, row[2].F)
		seen++
	}
	want := ds.Scenarios.Len() * ds.Catalog.Len()
	if seen != want {
		return fmt.Errorf("profiler: samples table has %d cells, want %d", seen, want)
	}
	return nil
}
