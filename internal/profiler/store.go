package profiler

import (
	"context"
	"fmt"
	"sort"

	"flare/internal/metricdb"
	"flare/internal/obs"
)

// Table names used in the metric database.
const (
	samplesTable = "samples"  // (scenario, metric, value)
	jobPerfTable = "job_perf" // (scenario, job, mips)
)

// Store writes the dataset into the metric database, creating the
// "samples" and "job_perf" tables (the paper's relational recording of
// collected statistics). When the database is store-backed (see
// metricdb.OpenDB) every insert is journaled through the write-ahead log
// as it happens, so a crash mid-store keeps all rows written so far —
// the history no longer depends on an end-of-run dump.
func (ds *Dataset) Store(db *metricdb.DB) error {
	return ds.StoreContext(context.Background(), db)
}

// StoreContext is Store with span tracing: a "profiler.store" span
// records how many rows were recorded.
func (ds *Dataset) StoreContext(ctx context.Context, db *metricdb.DB) error {
	_, span := obs.StartSpan(ctx, "profiler.store")
	defer span.End()

	samples, err := db.CreateTable(samplesTable, []metricdb.Column{
		{Name: "scenario", Type: metricdb.TypeInt},
		{Name: "metric", Type: metricdb.TypeString},
		{Name: "value", Type: metricdb.TypeFloat},
	})
	if err != nil {
		return fmt.Errorf("profiler: %w", err)
	}
	jobPerf, err := db.CreateTable(jobPerfTable, []metricdb.Column{
		{Name: "scenario", Type: metricdb.TypeInt},
		{Name: "job", Type: metricdb.TypeString},
		{Name: "mips", Type: metricdb.TypeFloat},
	})
	if err != nil {
		return fmt.Errorf("profiler: %w", err)
	}

	rows := 0
	names := ds.Catalog.Names()
	for id := 0; id < ds.Scenarios.Len(); id++ {
		for col, name := range names {
			err := samples.Insert(metricdb.Row{
				metricdb.Int(int64(id)),
				metricdb.String(name),
				metricdb.Float(ds.Matrix.At(id, col)),
			})
			if err != nil {
				return fmt.Errorf("profiler: %w", err)
			}
			rows++
		}
		// Sorted jobs, not map order: the stored row sequence (and so the
		// journaled byte stream) must be identical run to run.
		jobs := make([]string, 0, len(ds.JobMIPS[id]))
		for job := range ds.JobMIPS[id] {
			jobs = append(jobs, job)
		}
		sort.Strings(jobs)
		for _, job := range jobs {
			err := jobPerf.Insert(metricdb.Row{
				metricdb.Int(int64(id)),
				metricdb.String(job),
				metricdb.Float(ds.JobMIPS[id][job]),
			})
			if err != nil {
				return fmt.Errorf("profiler: %w", err)
			}
			rows++
		}
	}
	span.SetAttr("rows", rows)
	return nil
}

// Stored reports whether db already holds a profiled dataset (the
// "samples" table exists) — e.g. a server restarted against a durable
// database directory should load rather than re-store.
func Stored(db *metricdb.DB) bool {
	_, err := db.Table(samplesTable)
	return err == nil
}

// LoadMatrix reads the "samples" table back into the dataset's matrix
// layout, validating that every (scenario, metric) cell is present.
func (ds *Dataset) LoadMatrix(db *metricdb.DB) error {
	samples, err := db.Table(samplesTable)
	if err != nil {
		return fmt.Errorf("profiler: %w", err)
	}
	seen := 0
	for _, row := range samples.Select(nil) {
		id := int(row[0].I)
		col := ds.Catalog.Index(row[1].S)
		if col < 0 {
			return fmt.Errorf("profiler: samples table has unknown metric %q", row[1].S)
		}
		if id < 0 || id >= ds.Scenarios.Len() {
			return fmt.Errorf("profiler: samples table has out-of-range scenario %d", id)
		}
		ds.Matrix.Set(id, col, row[2].F)
		seen++
	}
	want := ds.Scenarios.Len() * ds.Catalog.Len()
	if seen != want {
		return fmt.Errorf("profiler: samples table has %d cells, want %d", seen, want)
	}
	return nil
}
