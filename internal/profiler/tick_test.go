package profiler

import (
	"reflect"
	"testing"

	"flare/internal/machine"
	"flare/internal/metrics"
	"flare/internal/scenario"
	"flare/internal/workload"
)

func newTestCollector(t *testing.T, set *scenario.Set, opts Options) *Collector {
	t.Helper()
	c, err := NewCollector(
		machine.BaselineConfig(machine.DefaultShape()),
		set,
		workload.DefaultCatalog(),
		metrics.DefaultCatalog(),
		opts,
	)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func requireIdenticalDatasets(t *testing.T, a, b *Dataset, label string) {
	t.Helper()
	if a.Matrix.Rows() != b.Matrix.Rows() || a.Matrix.Cols() != b.Matrix.Cols() {
		t.Fatalf("%s: matrix %dx%d vs %dx%d", label, a.Matrix.Rows(), a.Matrix.Cols(), b.Matrix.Rows(), b.Matrix.Cols())
	}
	for i := 0; i < a.Matrix.Rows(); i++ {
		for j := 0; j < a.Matrix.Cols(); j++ {
			if a.Matrix.At(i, j) != b.Matrix.At(i, j) {
				t.Fatalf("%s: cell (%d,%d) differs: %v vs %v", label, i, j, a.Matrix.At(i, j), b.Matrix.At(i, j))
			}
		}
	}
	if !reflect.DeepEqual(a.JobMIPS, b.JobMIPS) {
		t.Fatalf("%s: JobMIPS differ", label)
	}
}

// TestTickMatchesBatchCollect is the profiler's golden equivalence: a
// prefix collection followed by ticks that append the rest of the
// population produces a byte-identical dataset to one batch collection of
// everything — the per-scenario RNG substreams make measurement
// independent of when a scenario is measured.
func TestTickMatchesBatchCollect(t *testing.T) {
	full := testSet(t)
	all := full.All()
	if len(all) < 10 {
		t.Fatalf("test set has %d scenarios, want at least 10", len(all))
	}
	batch := collect(t, full, DefaultOptions())

	grown := scenario.NewSet()
	for _, sc := range all[:len(all)/2] {
		grown.Add(sc)
	}
	c := newTestCollector(t, grown, DefaultOptions())
	if _, err := c.Collect(t.Context()); err != nil {
		t.Fatal(err)
	}

	// Two ticks: first the third quarter, then the remainder.
	for _, stop := range []int{3 * len(all) / 4, len(all)} {
		before := grown.Len()
		for _, sc := range all[:stop] {
			grown.Add(sc) // duplicates dedup to their existing IDs
		}
		touched, err := c.Tick(t.Context(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(touched) != grown.Len()-before {
			t.Fatalf("tick touched %d scenarios, want %d new", len(touched), grown.Len()-before)
		}
	}
	requireIdenticalDatasets(t, c.Dataset(), batch, "ticked vs batch")
}

// TestTickRemeasureReproducesBytes re-measures existing scenarios: the
// per-scenario substream restarts, so the bytes must come out identical.
func TestTickRemeasureReproducesBytes(t *testing.T) {
	set := testSet(t)
	c := newTestCollector(t, set, DefaultOptions())
	ds, err := c.Collect(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	snapshot := ds.Matrix.Clone()

	changed := []int{0, 2, set.Len() - 1}
	touched, err := c.Tick(t.Context(), changed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(touched, changed) {
		t.Fatalf("touched = %v, want %v", touched, changed)
	}
	for i := 0; i < ds.Matrix.Rows(); i++ {
		for j := 0; j < ds.Matrix.Cols(); j++ {
			if ds.Matrix.At(i, j) != snapshot.At(i, j) {
				t.Fatalf("re-measured cell (%d,%d) changed: %v vs %v", i, j, ds.Matrix.At(i, j), snapshot.At(i, j))
			}
		}
	}
}

// TestTickDeterministicAcrossWorkerCounts extends the W=1-vs-N guarantee
// to the streaming path: the same tick sequence under different worker
// counts yields byte-identical datasets.
func TestTickDeterministicAcrossWorkerCounts(t *testing.T) {
	full := testSet(t)
	all := full.All()
	prefix := len(all) - len(all)/4

	run := func(workers int) *Dataset {
		set := scenario.NewSet()
		for _, sc := range all[:prefix] {
			set.Add(sc)
		}
		opts := DefaultOptions()
		opts.Workers = workers
		c := newTestCollector(t, set, opts)
		if _, err := c.Collect(t.Context()); err != nil {
			t.Fatal(err)
		}
		for _, sc := range all {
			set.Add(sc)
		}
		// Appends the rest and re-measures two existing scenarios at once.
		if _, err := c.Tick(t.Context(), []int{1, prefix - 1}); err != nil {
			t.Fatal(err)
		}
		return c.Dataset()
	}

	requireIdenticalDatasets(t, run(1), run(8), "workers 1 vs 8")
}

func TestTickValidation(t *testing.T) {
	set := testSet(t)
	c := newTestCollector(t, set, DefaultOptions())
	if _, err := c.Collect(t.Context()); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Tick(t.Context(), []int{set.Len()}); err == nil {
		t.Error("changed ID beyond measured population did not error")
	}
	if _, err := c.Tick(t.Context(), []int{-1}); err == nil {
		t.Error("negative changed ID did not error")
	}

	touched, err := c.Tick(t.Context(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if touched != nil {
		t.Errorf("no-op tick touched %v, want nil", touched)
	}

	// Duplicate changed IDs dedup to one measurement.
	touched, err = c.Tick(t.Context(), []int{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(touched, []int{3}) {
		t.Errorf("touched = %v, want [3]", touched)
	}
}
