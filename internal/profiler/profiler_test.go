package profiler

import (
	"math"
	"testing"
	"time"

	"flare/internal/dcsim"
	"flare/internal/machine"
	"flare/internal/metricdb"
	"flare/internal/metrics"
	"flare/internal/scenario"
	"flare/internal/workload"
)

// testSet builds a small deterministic scenario population.
func testSet(t *testing.T) *scenario.Set {
	t.Helper()
	cfg := dcsim.DefaultConfig()
	cfg.Duration = 4 * 24 * time.Hour
	cfg.ResizesPerJobPerDay = 4
	trace, err := dcsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return trace.Scenarios
}

func collect(t *testing.T, set *scenario.Set, opts Options) *Dataset {
	t.Helper()
	ds, err := Collect(
		machine.BaselineConfig(machine.DefaultShape()),
		set,
		workload.DefaultCatalog(),
		metrics.DefaultCatalog(),
		opts,
	)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestCollectValidation(t *testing.T) {
	cfg := machine.BaselineConfig(machine.DefaultShape())
	jobs := workload.DefaultCatalog()
	cat := metrics.DefaultCatalog()
	set := scenario.NewSet()

	if _, err := Collect(cfg, set, jobs, cat, DefaultOptions()); err == nil {
		t.Error("empty set did not error")
	}
	sc, _ := scenario.New([]scenario.Placement{{Job: workload.DataCaching, Instances: 1}})
	set.Add(sc)
	if _, err := Collect(cfg, set, nil, cat, DefaultOptions()); err == nil {
		t.Error("nil job catalog did not error")
	}
	bad := DefaultOptions()
	bad.SamplesPerScenario = 0
	if _, err := Collect(cfg, set, jobs, cat, bad); err == nil {
		t.Error("zero samples did not error")
	}
	badCfg := cfg
	badCfg.LLCMB = -1
	if _, err := Collect(badCfg, set, jobs, cat, DefaultOptions()); err == nil {
		t.Error("invalid config did not error")
	}
}

func TestCollectUnknownJobErrors(t *testing.T) {
	set := scenario.NewSet()
	sc, _ := scenario.New([]scenario.Placement{{Job: "mystery", Instances: 1}})
	set.Add(sc)
	_, err := Collect(machine.BaselineConfig(machine.DefaultShape()), set,
		workload.DefaultCatalog(), metrics.DefaultCatalog(), DefaultOptions())
	if err == nil {
		t.Error("unknown job in scenario did not error")
	}
}

func TestCollectFillsMatrix(t *testing.T) {
	set := testSet(t)
	ds := collect(t, set, DefaultOptions())

	if ds.Matrix.Rows() != set.Len() {
		t.Fatalf("matrix rows = %d, want %d", ds.Matrix.Rows(), set.Len())
	}
	if ds.Matrix.Cols() != ds.Catalog.Len() {
		t.Fatalf("matrix cols = %d, want %d", ds.Matrix.Cols(), ds.Catalog.Len())
	}
	// Every scenario must have positive machine MIPS.
	col, err := ds.MetricColumn("MIPS-Machine")
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range col {
		if v <= 0 {
			t.Errorf("scenario %d has MIPS-Machine = %v", id, v)
		}
	}
}

func TestCollectJobMIPSMatchesPlacements(t *testing.T) {
	set := testSet(t)
	ds := collect(t, set, DefaultOptions())
	for id := 0; id < set.Len(); id++ {
		sc, _ := set.Get(id)
		jm := ds.JobMIPS[id]
		if len(jm) != len(sc.Placements) {
			t.Fatalf("scenario %d has %d job MIPS entries, want %d", id, len(jm), len(sc.Placements))
		}
		for _, p := range sc.Placements {
			if jm[p.Job] <= 0 {
				t.Errorf("scenario %d job %s MIPS = %v", id, p.Job, jm[p.Job])
			}
		}
	}
}

func TestCollectDeterministicAcrossWorkerCounts(t *testing.T) {
	set := testSet(t)
	opts := DefaultOptions()
	opts.Workers = 1
	a := collect(t, set, opts)
	opts.Workers = 8
	b := collect(t, set, opts)

	for i := 0; i < a.Matrix.Rows(); i++ {
		for j := 0; j < a.Matrix.Cols(); j++ {
			if a.Matrix.At(i, j) != b.Matrix.At(i, j) {
				t.Fatalf("cell (%d,%d) differs across worker counts: %v vs %v",
					i, j, a.Matrix.At(i, j), b.Matrix.At(i, j))
			}
		}
	}
}

func TestCollectAveragingReducesNoise(t *testing.T) {
	set := scenario.NewSet()
	sc, _ := scenario.New([]scenario.Placement{{Job: workload.WebSearch, Instances: 2}})
	set.Add(sc)

	// Deterministic reference.
	det := collect(t, set, Options{SamplesPerScenario: 1, NoiseStd: 0, Seed: 1})
	ref, _ := det.MetricColumn("MIPS-Machine")

	spread := func(samples int) float64 {
		var worst float64
		for seed := int64(0); seed < 20; seed++ {
			ds := collect(t, set, Options{SamplesPerScenario: samples, NoiseStd: 0.05, Seed: seed})
			col, _ := ds.MetricColumn("MIPS-Machine")
			dev := math.Abs(col[0]-ref[0]) / ref[0]
			if dev > worst {
				worst = dev
			}
		}
		return worst
	}
	if s1, s16 := spread(1), spread(16); s16 >= s1 {
		t.Errorf("averaging 16 samples did not reduce worst-case deviation: 1 sample %v, 16 samples %v", s1, s16)
	}
}

func TestStoreAndLoadMatrix(t *testing.T) {
	set := scenario.NewSet()
	a, _ := scenario.New([]scenario.Placement{{Job: workload.DataCaching, Instances: 2}})
	b, _ := scenario.New([]scenario.Placement{{Job: workload.Mcf, Instances: 1}})
	set.Add(a)
	set.Add(b)
	ds := collect(t, set, DefaultOptions())

	db := metricdb.NewDB()
	if err := ds.Store(db); err != nil {
		t.Fatal(err)
	}

	samples, err := db.Table("samples")
	if err != nil {
		t.Fatal(err)
	}
	if samples.Len() != set.Len()*ds.Catalog.Len() {
		t.Errorf("samples table has %d rows, want %d", samples.Len(), set.Len()*ds.Catalog.Len())
	}

	// Round trip into a fresh dataset shell.
	shell := &Dataset{
		Scenarios: set,
		Catalog:   ds.Catalog,
		Config:    ds.Config,
		Matrix:    ds.Matrix.Clone(),
	}
	for i := 0; i < shell.Matrix.Rows(); i++ {
		for j := 0; j < shell.Matrix.Cols(); j++ {
			shell.Matrix.Set(i, j, 0)
		}
	}
	if err := shell.LoadMatrix(db); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Matrix.Rows(); i++ {
		for j := 0; j < ds.Matrix.Cols(); j++ {
			if shell.Matrix.At(i, j) != ds.Matrix.At(i, j) {
				t.Fatalf("cell (%d,%d) lost in store/load round trip", i, j)
			}
		}
	}
}

func TestStoreTwiceFails(t *testing.T) {
	set := scenario.NewSet()
	sc, _ := scenario.New([]scenario.Placement{{Job: workload.DataCaching, Instances: 1}})
	set.Add(sc)
	ds := collect(t, set, DefaultOptions())
	db := metricdb.NewDB()
	if err := ds.Store(db); err != nil {
		t.Fatal(err)
	}
	if err := ds.Store(db); err == nil {
		t.Error("second Store into same DB did not error")
	}
}

func TestMetricColumnUnknown(t *testing.T) {
	set := testSet(t)
	ds := collect(t, set, DefaultOptions())
	if _, err := ds.MetricColumn("nope"); err == nil {
		t.Error("unknown metric did not error")
	}
}

func TestPhaseStdFillsVariabilityMetrics(t *testing.T) {
	cat, err := metrics.WithVariability(metrics.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	set := scenario.NewSet()
	// MS has high PhaseVariability (0.70), sjeng very low (0.05).
	ms, _ := scenario.New([]scenario.Placement{{Job: workload.MediaStreaming, Instances: 2}})
	sj, _ := scenario.New([]scenario.Placement{{Job: workload.Sjeng, Instances: 2}})
	set.Add(ms)
	set.Add(sj)

	opts := Options{SamplesPerScenario: 24, NoiseStd: 0, Seed: 3, PhaseStd: 0.5}
	ds, err := Collect(machine.BaselineConfig(machine.DefaultShape()), set,
		workload.DefaultCatalog(), cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	col, err := ds.MetricColumn("MIPS-Machine-Std")
	if err != nil {
		t.Fatal(err)
	}
	if col[0] <= 0 {
		t.Fatalf("MS scenario MIPS stddev = %v, want > 0 with phases enabled", col[0])
	}
	// Relative variability of the diurnal job dwarfs the steady batch job.
	mipsCol, err := ds.MetricColumn("MIPS-Machine")
	if err != nil {
		t.Fatal(err)
	}
	relMS := col[0] / mipsCol[0]
	relSJ := col[1] / mipsCol[1]
	if relMS <= relSJ {
		t.Errorf("MS relative MIPS variability %v not above sjeng's %v", relMS, relSJ)
	}
}

func TestPhaseStdZeroLeavesStdNearZero(t *testing.T) {
	cat, err := metrics.WithVariability(metrics.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	set := scenario.NewSet()
	sc, _ := scenario.New([]scenario.Placement{{Job: workload.MediaStreaming, Instances: 2}})
	set.Add(sc)
	ds, err := Collect(machine.BaselineConfig(machine.DefaultShape()), set,
		workload.DefaultCatalog(), cat, Options{SamplesPerScenario: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	col, err := ds.MetricColumn("MIPS-Machine-Std")
	if err != nil {
		t.Fatal(err)
	}
	if col[0] != 0 {
		t.Errorf("deterministic samples gave MIPS stddev %v, want 0", col[0])
	}
}

func TestCollectManyBadScenariosNoDeadlock(t *testing.T) {
	// Regression: when every worker hits an error, the producer must not
	// block feeding the remaining scenario IDs (deadlock).
	set := scenario.NewSet()
	for i := 0; i < 64; i++ {
		sc, _ := scenario.New([]scenario.Placement{{Job: "mystery", Instances: i + 1}})
		set.Add(sc)
	}
	done := make(chan error, 1)
	go func() {
		_, err := Collect(machine.BaselineConfig(machine.DefaultShape()), set,
			workload.DefaultCatalog(), metrics.DefaultCatalog(),
			Options{SamplesPerScenario: 1, Workers: 2})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("all-bad population did not error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Collect deadlocked on an all-bad population")
	}
}

func TestProfileOneSteadyStateAllocs(t *testing.T) {
	// The per-sample loop must stay allocation-free in steady state: the
	// model evaluator, RNG, row buffer, assignment list, and the
	// per-scenario JobMIPS map all live in reusable collector/scratch
	// state, and re-measuring an already-measured scenario (the tick
	// path's hot case) clears and refills rather than reallocating.
	if raceEnabled {
		t.Skip("allocation counts inflated under -race")
	}
	set := testSet(t)
	opts := DefaultOptions()
	opts.PhaseStd = 0.3 // exercise the phase-factor buffer too

	c, err := NewCollector(machine.BaselineConfig(machine.DefaultShape()), set,
		workload.DefaultCatalog(), metrics.DefaultCatalog(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Collect(t.Context()); err != nil {
		t.Fatal(err)
	}
	scr, err := c.newScratch()
	if err != nil {
		t.Fatal(err)
	}
	id := set.Len() / 2
	if err := c.profileOne(id, scr); err != nil {
		t.Fatal(err) // warm the scratch before counting
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := c.profileOne(id, scr); err != nil {
			t.Fatal(err)
		}
	})
	// Measured 0 on go1.24; the bound leaves a sliver of slack for
	// toolchain drift while still catching any reintroduced per-sample
	// or per-scenario buffer.
	const maxAllocs = 2
	if allocs > maxAllocs {
		t.Errorf("profileOne allocates %.0f objects per scenario, want <= %d", allocs, maxAllocs)
	}
}
