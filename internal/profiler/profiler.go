// Package profiler implements FLARE's Profiler: the daemon that measures
// every job-colocation scenario of the datacenter and records averaged
// performance/resource metrics into the metric database (paper Sec 4.2).
//
// On the real system the Profiler runs on every server, periodically
// sampling perf counters, topdown, and /proc. Here each scenario is
// "measured" by evaluating the contention model several times with
// measurement noise and averaging — the same pipeline shape (noisy
// periodic samples -> per-scenario mean) with the testbed replaced by the
// model. Scenarios are profiled concurrently by a bounded worker pool.
package profiler

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"flare/internal/linalg"
	"flare/internal/machine"
	"flare/internal/mathx"
	"flare/internal/metrics"
	"flare/internal/obs"
	"flare/internal/perfmodel"
	"flare/internal/scenario"
	"flare/internal/stats"
	"flare/internal/workload"
)

// Options controls a collection run.
type Options struct {
	// SamplesPerScenario is how many noisy measurements are averaged per
	// scenario (the daemon's periodic samples over the job's >= 30 min
	// lifetime).
	SamplesPerScenario int
	// NoiseStd is the per-sample measurement noise.
	NoiseStd float64
	// Seed makes collection reproducible; each scenario derives its own
	// substream so results do not depend on worker interleaving.
	Seed int64
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// PhaseStd enables temporal/phase modelling (paper Sec 4.1): each
	// sample modulates every job's load by a log-normal factor with
	// deviation PhaseStd * job.PhaseVariability. Zero disables phases.
	// Combine with a metrics.WithVariability catalog so the resulting
	// "-Std" metrics capture the swings.
	PhaseStd float64
}

// DefaultOptions returns sensible collection settings.
func DefaultOptions() Options {
	return Options{
		SamplesPerScenario: 5,
		NoiseStd:           0.02,
		Seed:               1,
	}
}

// Dataset is the Profiler's output: one averaged metric vector per
// scenario, plus per-job throughput observations for the performance
// ground truth.
type Dataset struct {
	Scenarios *scenario.Set
	Catalog   *metrics.Catalog
	Config    machine.Config

	// Matrix holds scenarios in rows (by scenario ID) and metrics in
	// columns (catalog order).
	Matrix *linalg.Matrix

	// JobMIPS[scenarioID][job] is the measured per-instance MIPS of each
	// job in each scenario.
	JobMIPS []map[string]float64
}

// Collect profiles every scenario in the set on the given machine
// configuration.
func Collect(cfg machine.Config, set *scenario.Set, jobs *workload.Catalog,
	cat *metrics.Catalog, opts Options) (*Dataset, error) {
	return CollectContext(context.Background(), cfg, set, jobs, cat, opts)
}

// CollectContext is Collect with span tracing: a "profiler.collect" span
// records the worker-pool fan-out (scenario count, workers, samples), and
// the per-scenario measurement count lands in the default registry.
func CollectContext(ctx context.Context, cfg machine.Config, set *scenario.Set,
	jobs *workload.Catalog, cat *metrics.Catalog, opts Options) (*Dataset, error) {
	if set == nil || set.Len() == 0 {
		return nil, errors.New("profiler: empty scenario set")
	}
	if jobs == nil || cat == nil {
		return nil, errors.New("profiler: nil catalog")
	}
	if opts.SamplesPerScenario <= 0 {
		return nil, errors.New("profiler: SamplesPerScenario must be positive")
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("profiler: %w", err)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	_, span := obs.StartSpan(ctx, "profiler.collect")
	defer span.End()
	span.SetAttr("scenarios", set.Len())
	span.SetAttr("workers", workers)
	span.SetAttr("samples_per_scenario", opts.SamplesPerScenario)

	ds := &Dataset{
		Scenarios: set,
		Catalog:   cat,
		Config:    cfg,
		Matrix:    linalg.NewMatrix(set.Len(), cat.Len()),
		JobMIPS:   make([]map[string]float64, set.Len()),
	}

	// Workers never stop consuming, even after a failure — otherwise the
	// unbuffered feed below would block the producer once every worker
	// had exited on error. The first error wins; later work is skipped.
	var (
		ids      = make(chan int)
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		failed   atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker scratch: sample and column buffers are reused
			// across every scenario this worker profiles, so the
			// steady-state loop allocates only per-scenario outputs.
			sc := newScratch(opts.SamplesPerScenario, ds.Catalog.Len())
			for id := range ids {
				if failed.Load() {
					continue // drain without working
				}
				if err := ds.profileOne(id, jobs, opts, sc); err != nil {
					errOnce.Do(func() {
						firstErr = err
						failed.Store(true)
					})
				}
			}
		}()
	}
	for id := 0; id < set.Len(); id++ {
		ids <- id
	}
	close(ids)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	obs.Default().Counter("flare_profiler_scenarios_total",
		"scenarios measured by the profiler").Add(uint64(set.Len()))
	obs.Default().Counter("flare_profiler_samples_total",
		"noisy per-scenario measurements taken by the profiler").
		Add(uint64(set.Len()) * uint64(opts.SamplesPerScenario))
	return ds, nil
}

// scratch holds one worker's reusable profiling buffers: per-sample
// metric vectors (one flat backing array) and the cross-sample column
// used for the variability metrics.
type scratch struct {
	samples [][]float64
	col     []float64
	factors []float64
}

func newScratch(samplesPerScenario, catalogLen int) *scratch {
	flat := make([]float64, samplesPerScenario*catalogLen)
	sc := &scratch{
		samples: make([][]float64, samplesPerScenario),
		col:     make([]float64, samplesPerScenario),
	}
	for s := range sc.samples {
		sc.samples[s] = flat[s*catalogLen : (s+1)*catalogLen : (s+1)*catalogLen]
	}
	return sc
}

// profileOne measures one scenario: SamplesPerScenario noisy evaluations,
// averaged per metric and per job. The scratch buffers carry no state
// between scenarios; every cell is overwritten before it is read.
func (ds *Dataset) profileOne(id int, jobs *workload.Catalog, opts Options, scr *scratch) error {
	sc, err := ds.Scenarios.Get(id)
	if err != nil {
		return err
	}
	assignments, err := Assignments(sc, jobs)
	if err != nil {
		return err
	}

	// Per-scenario deterministic substream: results are independent of
	// scheduling order across workers.
	rng := rand.New(rand.NewSource(opts.Seed + int64(id)*7919))

	samples := scr.samples
	sumMIPS := make(map[string]float64, len(assignments))
	for s := 0; s < opts.SamplesPerScenario; s++ {
		res, err := perfmodel.Evaluate(ds.Config, assignments, perfmodel.Options{
			NoiseStd:        opts.NoiseStd,
			Rand:            rng,
			ActivityFactors: phaseFactorsInto(&scr.factors, assignments, opts.PhaseStd, rng),
		})
		if err != nil {
			return fmt.Errorf("profiler: scenario %d: %w", id, err)
		}
		metrics.ExtractInto(samples[s], ds.Catalog, ds.Config, res)
		for _, j := range res.Jobs {
			sumMIPS[j.Job] += j.MIPS
		}
	}

	n := float64(opts.SamplesPerScenario)
	names := ds.Catalog.Names()
	col := scr.col
	for i, name := range names {
		baseIdx := i
		if base, isStd := metrics.StdOf(name); isStd {
			baseIdx = ds.Catalog.Index(base)
			if baseIdx < 0 {
				return fmt.Errorf("profiler: variability metric %s has no base column", name)
			}
			for s := range samples {
				col[s] = samples[s][baseIdx]
			}
			ds.Matrix.Set(id, i, stats.StdDev(col))
			continue
		}
		var sum float64
		for s := range samples {
			sum += samples[s][baseIdx]
		}
		ds.Matrix.Set(id, i, sum/n)
	}

	jm := make(map[string]float64, len(sumMIPS))
	for job, x := range sumMIPS {
		jm[job] = x / n
	}
	ds.JobMIPS[id] = jm
	return nil
}

// phaseFactorsInto draws one temporal load multiplier per job for a
// sample window, scaled by each job's catalog PhaseVariability, growing
// the caller's reusable buffer as needed. Returns nil when phases are
// disabled.
func phaseFactorsInto(buf *[]float64, assignments []perfmodel.Assignment, phaseStd float64, rng *rand.Rand) []float64 {
	if phaseStd <= 0 {
		return nil
	}
	if cap(*buf) < len(assignments) {
		*buf = make([]float64, len(assignments))
	}
	out := (*buf)[:len(assignments)]
	for i, a := range assignments {
		f := math.Exp(rng.NormFloat64() * phaseStd * a.Profile.PhaseVariability)
		out[i] = mathx.Clamp(f, 0.5, 1.5)
	}
	return out
}

// Assignments resolves a scenario's placements against the job catalog.
func Assignments(sc scenario.Scenario, jobs *workload.Catalog) ([]perfmodel.Assignment, error) {
	out := make([]perfmodel.Assignment, 0, len(sc.Placements))
	for _, p := range sc.Placements {
		prof, err := jobs.Lookup(p.Job)
		if err != nil {
			return nil, fmt.Errorf("profiler: scenario %d: %w", sc.ID, err)
		}
		out = append(out, perfmodel.Assignment{Profile: prof, Instances: p.Instances})
	}
	return out, nil
}

// MetricColumn returns the dataset column for the named metric.
func (ds *Dataset) MetricColumn(name string) ([]float64, error) {
	idx := ds.Catalog.Index(name)
	if idx < 0 {
		return nil, fmt.Errorf("profiler: unknown metric %q", name)
	}
	return ds.Matrix.Col(idx), nil
}
