// Package profiler implements FLARE's Profiler: the daemon that measures
// every job-colocation scenario of the datacenter and records averaged
// performance/resource metrics into the metric database (paper Sec 4.2).
//
// On the real system the Profiler runs on every server, periodically
// sampling perf counters, topdown, and /proc. Here each scenario is
// "measured" by evaluating the contention model several times with
// measurement noise and averaging — the same pipeline shape (noisy
// periodic samples -> per-scenario mean) with the testbed replaced by the
// model.
//
// Collection is streaming and columnar: a Collector owns struct-of-arrays
// sample buffers (one contiguous column per metric) that are reused
// across ticks. Measurement runs in two phases under the collect span —
// "profiler.evaluate" fans scenarios out over a bounded worker pool and
// writes samples straight into the columns, and "profiler.reduce" folds
// the columns into per-scenario means and stddevs. After the initial
// Collect, Tick re-measures only the delta (new scenarios plus explicitly
// changed ones), so steady-state re-profiling is O(delta), not
// O(history): per-scenario RNG substreams make the tick sequence
// byte-identical to a from-scratch Collect.
package profiler

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"flare/internal/linalg"
	"flare/internal/machine"
	"flare/internal/mathx"
	"flare/internal/metrics"
	"flare/internal/obs"
	"flare/internal/perfmodel"
	"flare/internal/scenario"
	"flare/internal/stats"
	"flare/internal/workload"
)

// scenarioPrime derives each scenario's deterministic RNG substream from
// the collection seed, so results are independent of worker interleaving
// and a re-measured scenario reproduces its bytes exactly.
const scenarioPrime = 7919

// Options controls a collection run.
type Options struct {
	// SamplesPerScenario is how many noisy measurements are averaged per
	// scenario (the daemon's periodic samples over the job's >= 30 min
	// lifetime).
	SamplesPerScenario int
	// NoiseStd is the per-sample measurement noise.
	NoiseStd float64
	// Seed makes collection reproducible; each scenario derives its own
	// substream so results do not depend on worker interleaving.
	Seed int64
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// PhaseStd enables temporal/phase modelling (paper Sec 4.1): each
	// sample modulates every job's load by a log-normal factor with
	// deviation PhaseStd * job.PhaseVariability. Zero disables phases.
	// Combine with a metrics.WithVariability catalog so the resulting
	// "-Std" metrics capture the swings.
	PhaseStd float64
}

// DefaultOptions returns sensible collection settings.
func DefaultOptions() Options {
	return Options{
		SamplesPerScenario: 5,
		NoiseStd:           0.02,
		Seed:               1,
	}
}

// Dataset is the Profiler's output: one averaged metric vector per
// scenario, plus per-job throughput observations for the performance
// ground truth.
type Dataset struct {
	Scenarios *scenario.Set
	Catalog   *metrics.Catalog
	Config    machine.Config

	// Matrix holds scenarios in rows (by scenario ID) and metrics in
	// columns (catalog order).
	Matrix *linalg.Matrix

	// JobMIPS[scenarioID][job] is the measured per-instance MIPS of each
	// job in each scenario.
	JobMIPS []map[string]float64
}

// Collect profiles every scenario in the set on the given machine
// configuration.
func Collect(cfg machine.Config, set *scenario.Set, jobs *workload.Catalog,
	cat *metrics.Catalog, opts Options) (*Dataset, error) {
	return CollectContext(context.Background(), cfg, set, jobs, cat, opts)
}

// CollectContext is Collect with span tracing: a "profiler.collect" span
// wraps the evaluate/reduce sub-stages, and the per-scenario measurement
// count lands in the default registry.
func CollectContext(ctx context.Context, cfg machine.Config, set *scenario.Set,
	jobs *workload.Catalog, cat *metrics.Catalog, opts Options) (*Dataset, error) {
	c, err := NewCollector(cfg, set, jobs, cat, opts)
	if err != nil {
		return nil, err
	}
	return c.Collect(ctx)
}

// Collector owns the reusable state of a streaming profiling run: the
// dataset being grown and the columnar sample buffers shared across
// ticks. Methods are not safe for concurrent use; the internal worker
// pool provides the parallelism.
type Collector struct {
	cfg  machine.Config
	jobs *workload.Catalog
	opts Options

	ds *Dataset

	// cols is the struct-of-arrays sample buffer: cols[j] holds metric
	// j's samples for every scenario, scenario id's samples contiguous at
	// [id*S, (id+1)*S). Columns are reused (and grown) across ticks.
	cols [][]float64

	// stdBase[j] is the base column a "-Std" variability column reduces
	// from, or -1 for plain mean columns (resolved once from the catalog).
	stdBase []int

	// measured is how many scenario IDs have been profiled; IDs >=
	// measured are new since the last Collect/Tick.
	measured int
}

// NewCollector validates the inputs and prepares an empty collector bound
// to the scenario set. The set may keep growing afterwards: Collect
// profiles everything currently in it, Tick profiles the delta.
func NewCollector(cfg machine.Config, set *scenario.Set, jobs *workload.Catalog,
	cat *metrics.Catalog, opts Options) (*Collector, error) {
	if set == nil {
		return nil, errors.New("profiler: nil scenario set")
	}
	if jobs == nil || cat == nil {
		return nil, errors.New("profiler: nil catalog")
	}
	if opts.SamplesPerScenario <= 0 {
		return nil, errors.New("profiler: SamplesPerScenario must be positive")
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("profiler: %w", err)
	}
	c := &Collector{
		cfg:     cfg,
		jobs:    jobs,
		opts:    opts,
		cols:    make([][]float64, cat.Len()),
		stdBase: make([]int, cat.Len()),
	}
	names := cat.Names()
	for j := 0; j < cat.Len(); j++ {
		c.stdBase[j] = cat.StdBase(j)
		if _, isStd := metrics.StdOf(names[j]); isStd && c.stdBase[j] < 0 {
			return nil, fmt.Errorf("profiler: variability metric %s has no base column", names[j])
		}
	}
	c.ds = &Dataset{
		Scenarios: set,
		Catalog:   cat,
		Config:    cfg,
	}
	return c, nil
}

// Dataset returns the dataset the collector is growing. It is valid after
// the first successful Collect or Tick.
func (c *Collector) Dataset() *Dataset { return c.ds }

// Collect profiles every scenario currently in the set — the full batch
// build, and the golden reference the tick path is tested against.
func (c *Collector) Collect(ctx context.Context) (*Dataset, error) {
	set := c.ds.Scenarios
	if set.Len() == 0 {
		return nil, errors.New("profiler: empty scenario set")
	}
	ctx, span := obs.StartSpan(ctx, "profiler.collect")
	defer span.End()
	span.SetAttr("scenarios", set.Len())
	span.SetAttr("workers", c.workers())
	span.SetAttr("samples_per_scenario", c.opts.SamplesPerScenario)

	ids := make([]int, set.Len())
	for i := range ids {
		ids[i] = i
	}
	if err := c.measure(ctx, ids); err != nil {
		return nil, err
	}
	return c.ds, nil
}

// Tick profiles the delta after a datacenter tick: every scenario added
// to the set since the last Collect/Tick, plus the explicitly listed
// already-measured IDs (re-measured byte-identically from their own RNG
// substreams). It returns the sorted IDs that were (re)profiled. Cost is
// O(len(touched)), not O(set.Len()).
func (c *Collector) Tick(ctx context.Context, changed []int) (touched []int, err error) {
	set := c.ds.Scenarios
	ctx, span := obs.StartSpan(ctx, "profiler.tick")
	defer span.End()

	seen := make(map[int]bool, len(changed))
	for _, id := range changed {
		if id < 0 || id >= c.measured {
			return nil, fmt.Errorf("profiler: changed scenario %d out of measured range [0,%d)", id, c.measured)
		}
		if !seen[id] {
			seen[id] = true
			touched = append(touched, id)
		}
	}
	for id := c.measured; id < set.Len(); id++ {
		touched = append(touched, id)
	}
	sort.Ints(touched)
	span.SetAttr("new", set.Len()-c.measured)
	span.SetAttr("changed", len(seen))
	span.SetAttr("touched", len(touched))
	if len(touched) == 0 {
		return nil, nil
	}
	if err := c.measure(ctx, touched); err != nil {
		return nil, err
	}
	return touched, nil
}

// workers resolves the effective worker-pool size.
func (c *Collector) workers() int {
	if c.opts.Workers > 0 {
		return c.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// measure runs the two-phase collection for the given scenario IDs:
// evaluate (model + extract into the sample columns, worker pool) then
// reduce (columns -> matrix rows, sequential and deterministic).
func (c *Collector) measure(ctx context.Context, ids []int) error {
	c.grow()
	if err := c.evaluatePhase(ctx, ids); err != nil {
		return err
	}
	c.reducePhase(ctx, ids)
	c.measured = c.ds.Scenarios.Len()
	obs.Default().Counter("flare_profiler_scenarios_total",
		"scenarios measured by the profiler").Add(uint64(len(ids)))
	obs.Default().Counter("flare_profiler_samples_total",
		"noisy per-scenario measurements taken by the profiler").
		Add(uint64(len(ids)) * uint64(c.opts.SamplesPerScenario))
	return nil
}

// grow extends the dataset matrix, the JobMIPS ledger, and the sample
// columns to cover every scenario currently in the set.
func (c *Collector) grow() {
	n := c.ds.Scenarios.Len()
	cat := c.ds.Catalog
	if c.ds.Matrix == nil {
		c.ds.Matrix = linalg.NewMatrix(n, cat.Len())
	} else if add := n - c.ds.Matrix.Rows(); add > 0 {
		c.ds.Matrix.GrowRows(add)
	}
	for len(c.ds.JobMIPS) < n {
		c.ds.JobMIPS = append(c.ds.JobMIPS, nil)
	}
	rows := n * c.opts.SamplesPerScenario
	for j := range c.cols {
		if cap(c.cols[j]) < rows {
			grown := make([]float64, rows)
			copy(grown, c.cols[j])
			c.cols[j] = grown
		} else {
			c.cols[j] = c.cols[j][:rows]
		}
	}
}

// evaluatePhase fans the scenario IDs out over the worker pool; each
// worker evaluates the contention model and writes samples directly into
// the columnar buffers.
func (c *Collector) evaluatePhase(ctx context.Context, ids []int) error {
	_, span := obs.StartSpan(ctx, "profiler.evaluate")
	defer span.End()
	span.SetAttr("scenarios", len(ids))

	workers := c.workers()
	// Workers never stop consuming, even after a failure — otherwise the
	// unbuffered feed below would block the producer once every worker
	// had exited on error. The first error wins; later work is skipped.
	var (
		feed     = make(chan int)
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		failed   atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker scratch: the model evaluator, RNG, and row
			// buffer are reused across every scenario this worker
			// profiles, so the steady-state loop is allocation-free.
			scr, err := c.newScratch()
			if err != nil {
				errOnce.Do(func() {
					firstErr = err
					failed.Store(true)
				})
			}
			for id := range feed {
				if failed.Load() {
					continue // drain without working
				}
				if err := c.profileOne(id, scr); err != nil {
					errOnce.Do(func() {
						firstErr = err
						failed.Store(true)
					})
				}
			}
		}()
	}
	for _, id := range ids {
		feed <- id
	}
	close(feed)
	wg.Wait()
	return firstErr
}

// reducePhase folds each touched scenario's sample columns into its
// matrix row: means for plain metrics, cross-sample stddevs for the
// variability twins. Sequential, so reduction order never depends on the
// worker count.
func (c *Collector) reducePhase(ctx context.Context, ids []int) {
	_, span := obs.StartSpan(ctx, "profiler.reduce")
	defer span.End()
	span.SetAttr("scenarios", len(ids))

	s := c.opts.SamplesPerScenario
	n := float64(s)
	for _, id := range ids {
		base := id * s
		row := c.ds.Matrix.RowView(id)
		for j := range c.cols {
			if b := c.stdBase[j]; b >= 0 {
				row[j] = stats.StdDev(c.cols[b][base : base+s])
				continue
			}
			var sum float64
			for _, x := range c.cols[j][base : base+s] {
				sum += x
			}
			row[j] = sum / n
		}
	}
}

// scratch holds one worker's reusable profiling state.
type scratch struct {
	ev      *perfmodel.Evaluator
	src     *splitMix
	rng     *rand.Rand
	row     []float64 // one extracted sample, scattered into the columns
	factors []float64
	assign  []perfmodel.Assignment
	res     perfmodel.Result
}

func (c *Collector) newScratch() (*scratch, error) {
	ev, err := perfmodel.NewEvaluator(c.cfg)
	if err != nil {
		return nil, fmt.Errorf("profiler: %w", err)
	}
	src := &splitMix{}
	return &scratch{
		ev:  ev,
		src: src,
		rng: rand.New(src),
		row: make([]float64, c.ds.Catalog.Len()),
	}, nil
}

// profileOne measures one scenario: SamplesPerScenario noisy evaluations
// written into the sample columns, plus the per-job MIPS ledger. The
// deterministic relaxation runs once when phases are disabled (every
// sample would converge to the same state); only the noisy result
// materialisation repeats. With phases enabled each sample re-relaxes
// under its drawn activity factors, preserving the RNG draw order.
func (c *Collector) profileOne(id int, scr *scratch) error {
	sc, err := c.ds.Scenarios.Get(id)
	if err != nil {
		return err
	}
	scr.assign, err = assignmentsInto(scr.assign[:0], sc, c.jobs)
	if err != nil {
		return err
	}

	// Per-scenario deterministic substream: results are independent of
	// scheduling order across workers, and a re-measured scenario
	// reproduces its bytes exactly.
	scr.src.seed(c.opts.Seed + int64(id)*scenarioPrime)

	if err := scr.ev.Begin(scr.assign); err != nil {
		return fmt.Errorf("profiler: scenario %d: %w", id, err)
	}
	jm := c.ds.JobMIPS[id]
	if jm == nil {
		jm = make(map[string]float64, len(scr.assign))
		c.ds.JobMIPS[id] = jm
	} else {
		clear(jm)
	}

	s := c.opts.SamplesPerScenario
	base := id * s
	relaxed := false
	for i := 0; i < s; i++ {
		factors := phaseFactorsInto(&scr.factors, scr.assign, c.opts.PhaseStd, scr.rng)
		if factors != nil || !relaxed {
			if err := scr.ev.Relax(factors); err != nil {
				return fmt.Errorf("profiler: scenario %d: %w", id, err)
			}
			relaxed = true
		}
		if err := scr.ev.ResultInto(&scr.res, perfmodel.Options{
			NoiseStd: c.opts.NoiseStd,
			Rand:     scr.rng,
		}); err != nil {
			return fmt.Errorf("profiler: scenario %d: %w", id, err)
		}
		metrics.ExtractInto(scr.row, c.ds.Catalog, c.ds.Config, scr.res)
		for j, x := range scr.row {
			c.cols[j][base+i] = x
		}
		for k := range scr.res.Jobs {
			jp := &scr.res.Jobs[k]
			jm[jp.Job] += jp.MIPS
		}
	}
	n := float64(s)
	for job := range jm {
		jm[job] /= n
	}
	return nil
}

// phaseFactorsInto draws one temporal load multiplier per job for a
// sample window, scaled by each job's catalog PhaseVariability, growing
// the caller's reusable buffer as needed. Returns nil when phases are
// disabled.
func phaseFactorsInto(buf *[]float64, assignments []perfmodel.Assignment, phaseStd float64, rng *rand.Rand) []float64 {
	if phaseStd <= 0 {
		return nil
	}
	if cap(*buf) < len(assignments) {
		*buf = make([]float64, len(assignments))
	}
	out := (*buf)[:len(assignments)]
	for i, a := range assignments {
		f := math.Exp(rng.NormFloat64() * phaseStd * a.Profile.PhaseVariability)
		out[i] = mathx.Clamp(f, 0.5, 1.5)
	}
	return out
}

// Assignments resolves a scenario's placements against the job catalog.
func Assignments(sc scenario.Scenario, jobs *workload.Catalog) ([]perfmodel.Assignment, error) {
	return assignmentsInto(make([]perfmodel.Assignment, 0, len(sc.Placements)), sc, jobs)
}

// assignmentsInto is Assignments appending into a reusable buffer.
func assignmentsInto(buf []perfmodel.Assignment, sc scenario.Scenario, jobs *workload.Catalog) ([]perfmodel.Assignment, error) {
	for _, p := range sc.Placements {
		prof, err := jobs.Lookup(p.Job)
		if err != nil {
			return nil, fmt.Errorf("profiler: scenario %d: %w", sc.ID, err)
		}
		buf = append(buf, perfmodel.Assignment{Profile: prof, Instances: p.Instances})
	}
	return buf, nil
}

// MetricColumn returns the dataset column for the named metric.
func (ds *Dataset) MetricColumn(name string) ([]float64, error) {
	idx := ds.Catalog.Index(name)
	if idx < 0 {
		return nil, fmt.Errorf("profiler: unknown metric %q", name)
	}
	return ds.Matrix.Col(idx), nil
}
