package profiler

// splitMix is a SplitMix64 rand.Source64: a deterministic counter-based
// generator whose output is a strong mix of its 64-bit state (Steele,
// Lea & Flood, OOPSLA 2014 — the same finaliser Go uses to seed PCG).
//
// The profiler draws a fresh substream per scenario (seed + id*prime).
// math/rand's default lagged-Fibonacci source pays a ~600-step warmup on
// every Seed, which profiling showed was ~13% of the whole collect stage;
// splitMix64 reseeds by assigning one word, and its first outputs are
// already well distributed even for the profiler's arithmetic-progression
// seeds (the finaliser is explicitly designed to decorrelate sequential
// states). Quality matters here only for measurement-noise realism, not
// cryptography.
type splitMix struct {
	s uint64
}

// seed resets the stream. Equal seeds reproduce equal streams.
func (g *splitMix) seed(v int64) { g.s = uint64(v) }

func (g *splitMix) next() uint64 {
	g.s += 0x9e3779b97f4a7c15
	z := g.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 implements rand.Source64.
func (g *splitMix) Uint64() uint64 { return g.next() }

// Int63 implements rand.Source.
func (g *splitMix) Int63() int64 { return int64(g.next() >> 1) }

// Seed implements rand.Source.
func (g *splitMix) Seed(seed int64) { g.seed(seed) }
