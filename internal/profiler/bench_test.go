package profiler

import (
	"sync"
	"testing"
	"time"

	"flare/internal/dcsim"
	"flare/internal/machine"
	"flare/internal/metrics"
	"flare/internal/scenario"
	"flare/internal/workload"
)

var (
	benchOnce sync.Once
	benchVal  *scenario.Set
	benchErr  error
)

// benchSet simulates the 10-day trace the pipeline-stage benchmarks use,
// so the collect numbers here line up with profiler.collect-ms in
// results/BENCH_stages.json.
func benchSet(b *testing.B) *scenario.Set {
	b.Helper()
	benchOnce.Do(func() {
		cfg := dcsim.DefaultConfig()
		cfg.Duration = 10 * 24 * time.Hour
		var trace *dcsim.Trace
		trace, benchErr = dcsim.Run(cfg)
		if benchErr == nil {
			benchVal = trace.Scenarios
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchVal
}

func benchCollector(b *testing.B, set *scenario.Set) *Collector {
	b.Helper()
	c, err := NewCollector(
		machine.BaselineConfig(machine.DefaultShape()),
		set,
		workload.DefaultCatalog(),
		metrics.DefaultCatalog(),
		DefaultOptions(),
	)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkProfilerCollect measures a full batch collection (every
// scenario, every sample) — the O(history) reference cost.
func BenchmarkProfilerCollect(b *testing.B) {
	set := benchSet(b)
	c := benchCollector(b, set)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Collect(b.Context()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(set.Len()), "scenarios")
}

// BenchmarkProfilerTick measures a datacenter tick that re-measures 1%
// of the population — the O(delta) steady-state cost. The ratio of
// BenchmarkProfilerCollect to this benchmark is the incremental speedup
// (acceptance floor: 10x).
func BenchmarkProfilerTick(b *testing.B) {
	set := benchSet(b)
	c := benchCollector(b, set)
	if _, err := c.Collect(b.Context()); err != nil {
		b.Fatal(err)
	}
	delta := set.Len() / 100
	if delta == 0 {
		delta = 1
	}
	changed := make([]int, delta)
	for i := range changed {
		changed[i] = i * (set.Len() / delta)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Tick(b.Context(), changed); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(delta), "changed")
}
