package stats

import (
	"strings"
	"testing"
)

func TestNewHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h, err := NewHistogram(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 10 {
		t.Errorf("N = %d, want 10", h.N)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Errorf("sum of counts = %d, want 10", total)
	}
	// Uniform data over 5 bins should give 2 per bin.
	for i, c := range h.Counts {
		if c != 2 {
			t.Errorf("bin %d count = %d, want 2", i, c)
		}
	}
}

func TestHistogramMaxValueInLastBin(t *testing.T) {
	h, err := NewHistogram([]float64{0, 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[3] != 1 {
		t.Errorf("max value not in last bin: %v", h.Counts)
	}
}

func TestHistogramDegenerateSample(t *testing.T) {
	h, err := NewHistogram([]float64{5, 5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 3 {
		t.Errorf("degenerate sample counts = %v, want all in bin 0", h.Counts)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 3); err == nil {
		t.Error("empty sample did not error")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("zero bins did not error")
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, err := NewHistogram([]float64{0, 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.BinCenter(0); got != 2.5 {
		t.Errorf("BinCenter(0) = %v, want 2.5", got)
	}
	if got := h.BinCenter(1); got != 7.5 {
		t.Errorf("BinCenter(1) = %v, want 7.5", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h, err := NewHistogram([]float64{1, 1, 1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := h.Render(10)
	if !strings.Contains(out, "#") {
		t.Errorf("Render produced no bars:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Errorf("Render produced %d lines, want 2", lines)
	}
}
