package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); got != tt.want {
				t.Errorf("Mean(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{7}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestSampleVariance(t *testing.T) {
	xs := []float64{1, 2, 3}
	if got := SampleVariance(xs); math.Abs(got-1) > 1e-12 {
		t.Errorf("SampleVariance = %v, want 1", got)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	tests := []struct {
		name string
		ys   []float64
		want float64
	}{
		{"perfect-positive", []float64{2, 4, 6, 8}, 1},
		{"perfect-negative", []float64{8, 6, 4, 2}, -1},
		{"constant", []float64{5, 5, 5, 5}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Correlation(xs, tt.ys); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Correlation = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCovarianceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Covariance with mismatched lengths did not panic")
		}
	}()
	Covariance([]float64{1}, []float64{1, 2})
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // deliberately unsorted

	tests := []struct {
		name string
		q    float64
		want float64
	}{
		{"min", 0, 1},
		{"max", 1, 4},
		{"median", 0.5, 2.5},
		{"q25", 0.25, 1.75},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Quantile(xs, tt.q)
			if err != nil {
				t.Fatalf("Quantile error: %v", err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
			}
		})
	}

	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile of empty sample did not error")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile with q>1 did not error")
	}
	// Quantile must not mutate its input.
	if xs[0] != 4 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestMedianSingleton(t *testing.T) {
	got, err := Median([]float64{42})
	if err != nil || got != 42 {
		t.Errorf("Median([42]) = %v, %v", got, err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 9, 0})
	if err != nil {
		t.Fatal(err)
	}
	if lo != -1 || hi != 9 {
		t.Errorf("MinMax = (%v, %v), want (-1, 9)", lo, hi)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("MinMax of empty sample did not error")
	}
}

func TestStandardize(t *testing.T) {
	z, mean, std := Standardize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || std != 2 {
		t.Fatalf("Standardize moments = (%v, %v), want (5, 2)", mean, std)
	}
	if got := Mean(z); math.Abs(got) > 1e-12 {
		t.Errorf("standardized mean = %v, want 0", got)
	}
	if got := StdDev(z); math.Abs(got-1) > 1e-12 {
		t.Errorf("standardized std = %v, want 1", got)
	}
}

func TestStandardizeConstantColumn(t *testing.T) {
	z, _, std := Standardize([]float64{3, 3, 3})
	if std != 0 {
		t.Errorf("constant column std = %v, want 0", std)
	}
	for _, v := range z {
		if v != 0 {
			t.Errorf("constant column standardized to %v, want all zeros", z)
			break
		}
	}
}

func TestCorrelationPropertyBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(64)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		c := Correlation(xs, ys)
		return c >= -1 && c <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorrelationPropertySymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(64)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		return math.Abs(Correlation(xs, ys)-Correlation(ys, xs)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVariancePropertyShiftInvariant(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(64)
		xs := make([]float64, n)
		shifted := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
			shifted[i] = xs[i] + shift
		}
		return math.Abs(Variance(xs)-Variance(shifted)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
