package stats

import (
	"errors"
	"math"
)

// NormalQuantile returns the p-th quantile of the standard normal
// distribution using the Acklam rational approximation, accurate to about
// 1.15e-9 over (0, 1). It panics for p outside (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile requires p in (0,1)")
	}

	// Coefficients of the Acklam approximation.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00,
	}

	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)

	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// NormalCDF returns P(Z <= x) for a standard normal Z.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// ConfidenceInterval is a symmetric two-sided interval around a point
// estimate.
type ConfidenceInterval struct {
	Center float64 // point estimate (sample mean)
	Lower  float64 // lower bound
	Upper  float64 // upper bound
	Level  float64 // confidence level, e.g. 0.95
}

// HalfWidth returns the interval's half width.
func (ci ConfidenceInterval) HalfWidth() float64 {
	return (ci.Upper - ci.Lower) / 2
}

// Contains reports whether x lies inside the interval (inclusive).
func (ci ConfidenceInterval) Contains(x float64) bool {
	return x >= ci.Lower && x <= ci.Upper
}

// MeanCI returns a normal-theory confidence interval for the mean of xs at
// the given level (e.g. 0.95). It uses the sample standard deviation with
// the z quantile, which matches the paper's large-sample sampling analysis
// (Sec 5.3-5.4). It returns an error for samples smaller than 2 or levels
// outside (0, 1).
func MeanCI(xs []float64, level float64) (ConfidenceInterval, error) {
	if len(xs) < 2 {
		return ConfidenceInterval{}, errors.New("stats: MeanCI requires at least 2 observations")
	}
	if level <= 0 || level >= 1 {
		return ConfidenceInterval{}, errors.New("stats: confidence level must be in (0,1)")
	}
	m := Mean(xs)
	se := SampleStdDev(xs) / math.Sqrt(float64(len(xs)))
	z := NormalQuantile(0.5 + level/2)
	return ConfidenceInterval{
		Center: m,
		Lower:  m - z*se,
		Upper:  m + z*se,
		Level:  level,
	}, nil
}

// FinitePopulationCI returns the confidence interval for a sample mean
// drawn *without replacement* from a finite population of size popSize,
// applying the finite population correction. This models the paper's
// scenario-sampling baseline: sampling n of the 895 colocation scenarios.
func FinitePopulationCI(sampleMean, popStdDev float64, n, popSize int, level float64) (ConfidenceInterval, error) {
	if n < 1 || popSize < 1 || n > popSize {
		return ConfidenceInterval{}, errors.New("stats: invalid sample/population size")
	}
	if level <= 0 || level >= 1 {
		return ConfidenceInterval{}, errors.New("stats: confidence level must be in (0,1)")
	}
	se := popStdDev / math.Sqrt(float64(n))
	if popSize > 1 {
		fpc := math.Sqrt(float64(popSize-n) / float64(popSize-1))
		se *= fpc
	}
	z := NormalQuantile(0.5 + level/2)
	return ConfidenceInterval{
		Center: sampleMean,
		Lower:  sampleMean - z*se,
		Upper:  sampleMean + z*se,
		Level:  level,
	}, nil
}
