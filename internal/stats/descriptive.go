// Package stats implements the descriptive and inferential statistics the
// FLARE pipeline depends on: moments, correlation, quantiles, histograms,
// and normal-theory confidence intervals.
//
// All functions are pure and operate on plain []float64 slices so the
// package stays decoupled from the rest of the codebase.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot produce a meaningful
// result from an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (divisor n), or 0 when
// len(xs) < 2. FLARE standardises metric columns with population moments,
// matching the usual PCA convention.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance of xs (divisor n-1),
// or 0 when len(xs) < 2.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return Variance(xs) * float64(len(xs)) / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// SampleStdDev returns the sample standard deviation of xs.
func SampleStdDev(xs []float64) float64 {
	return math.Sqrt(SampleVariance(xs))
}

// Covariance returns the population covariance of paired samples xs, ys.
// It panics if the lengths differ.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: covariance of mismatched lengths")
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sum float64
	for i := range xs {
		sum += (xs[i] - mx) * (ys[i] - my)
	}
	return sum / float64(len(xs))
}

// Correlation returns the Pearson correlation coefficient of xs and ys in
// [-1, 1]. When either sample has (near) zero variance the correlation is
// undefined and 0 is returned, which is the safe choice for the metric
// refinement step (a constant metric is never "duplicated by" another).
func Correlation(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx < 1e-12 || sy < 1e-12 {
		return 0
	}
	r := Covariance(xs, ys) / (sx * sy)
	// Guard against rounding pushing |r| slightly above 1.
	if r > 1 {
		return 1
	}
	if r < -1 {
		return -1
	}
	return r
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks (the same scheme as numpy's default).
// It returns ErrEmpty for an empty sample and an error for q outside [0,1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the median of xs, or ErrEmpty.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// MinMax returns the minimum and maximum of xs, or ErrEmpty.
func MinMax(xs []float64) (minVal, maxVal float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	minVal, maxVal = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minVal {
			minVal = x
		}
		if x > maxVal {
			maxVal = x
		}
	}
	return minVal, maxVal, nil
}

// Standardize returns (xs - mean)/std as a new slice, along with the mean
// and std used. When std is (near) zero the column is returned centred but
// unscaled, so constant metrics become all-zero rather than NaN.
func Standardize(xs []float64) (z []float64, mean, std float64) {
	mean = Mean(xs)
	std = StdDev(xs)
	z = make([]float64, len(xs))
	if std < 1e-12 {
		for i, x := range xs {
			z[i] = x - mean
		}
		return z, mean, 0
	}
	for i, x := range xs {
		z[i] = (x - mean) / std
	}
	return z, mean, std
}
