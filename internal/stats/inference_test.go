package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	tests := []struct {
		p    float64
		want float64
	}{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.95, 1.644854},
		{0.841344746, 1.0}, // CDF(1)
	}
	for _, tt := range tests {
		if got := NormalQuantile(tt.p); math.Abs(got-tt.want) > 1e-4 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestNormalQuantileOutOfRangePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestNormalCDFQuantileRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		// Map into a well-conditioned open interval.
		p := 0.001 + 0.998*(math.Abs(math.Mod(raw, 1.0)))
		if p >= 0.999 {
			p = 0.998
		}
		x := NormalQuantile(p)
		return math.Abs(NormalCDF(x)-p) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanCI(t *testing.T) {
	// 10k standard-normal draws: the 95% CI should bracket 0 tightly.
	r := rand.New(rand.NewSource(7))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	ci, err := MeanCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(0) {
		t.Errorf("95%% CI %+v does not contain the true mean 0", ci)
	}
	wantHalf := 1.96 / math.Sqrt(10000)
	if math.Abs(ci.HalfWidth()-wantHalf) > 0.005 {
		t.Errorf("CI half width = %v, want ~%v", ci.HalfWidth(), wantHalf)
	}
}

func TestMeanCIErrors(t *testing.T) {
	if _, err := MeanCI([]float64{1}, 0.95); err == nil {
		t.Error("MeanCI with 1 observation did not error")
	}
	if _, err := MeanCI([]float64{1, 2}, 1.5); err == nil {
		t.Error("MeanCI with level > 1 did not error")
	}
}

func TestFinitePopulationCI(t *testing.T) {
	// Sampling the whole population leaves zero uncertainty.
	ci, err := FinitePopulationCI(10, 5, 100, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.HalfWidth() > 1e-9 {
		t.Errorf("full-population CI half width = %v, want 0", ci.HalfWidth())
	}

	// A smaller sample must widen the interval.
	small, err := FinitePopulationCI(10, 5, 10, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	large, err := FinitePopulationCI(10, 5, 50, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if small.HalfWidth() <= large.HalfWidth() {
		t.Errorf("CI half width did not shrink with sample size: n=10 %v, n=50 %v",
			small.HalfWidth(), large.HalfWidth())
	}
}

func TestFinitePopulationCIErrors(t *testing.T) {
	if _, err := FinitePopulationCI(0, 1, 10, 5, 0.95); err == nil {
		t.Error("n > popSize did not error")
	}
	if _, err := FinitePopulationCI(0, 1, 0, 5, 0.95); err == nil {
		t.Error("n = 0 did not error")
	}
	if _, err := FinitePopulationCI(0, 1, 2, 5, 0); err == nil {
		t.Error("level = 0 did not error")
	}
}

func TestMeanCIPropertyCoverage(t *testing.T) {
	// Frequentist coverage check: across repeated experiments with a known
	// mean, the 95% CI should contain it roughly 95% of the time.
	r := rand.New(rand.NewSource(42))
	const trials = 400
	hits := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 50)
		for j := range xs {
			xs[j] = 3 + 2*r.NormFloat64()
		}
		ci, err := MeanCI(xs, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if ci.Contains(3) {
			hits++
		}
	}
	coverage := float64(hits) / trials
	if coverage < 0.90 || coverage > 0.99 {
		t.Errorf("95%% CI empirical coverage = %v, want ~0.95", coverage)
	}
}
