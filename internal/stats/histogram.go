package stats

import (
	"errors"
	"fmt"
	"strings"
)

// Histogram is a fixed-width binned summary of a sample, used to render
// the violin-style distributions of Figure 12a as text.
type Histogram struct {
	Min    float64 // lower edge of the first bin
	Max    float64 // upper edge of the last bin
	Counts []int   // per-bin observation counts
	N      int     // total observations
}

// NewHistogram bins xs into the given number of equal-width bins spanning
// [min(xs), max(xs)]. It returns an error for an empty sample or a
// non-positive bin count. A degenerate sample (all equal) produces a
// single fully-populated bin region.
func NewHistogram(xs []float64, bins int) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if bins <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	lo, hi, err := MinMax(xs)
	if err != nil {
		return nil, err
	}
	h := &Histogram{Min: lo, Max: hi, Counts: make([]int, bins), N: len(xs)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		var idx int
		if width > 0 {
			idx = int((x - lo) / width)
			if idx >= bins { // x == hi lands in the last bin
				idx = bins - 1
			}
		}
		h.Counts[idx]++
	}
	return h, nil
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	if len(h.Counts) == 0 {
		return h.Min
	}
	width := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*width
}

// MaxCount returns the largest per-bin count.
func (h *Histogram) MaxCount() int {
	out := 0
	for _, c := range h.Counts {
		if c > out {
			out = c
		}
	}
	return out
}

// Render draws the histogram sideways as ASCII art, one line per bin, with
// bars scaled to width columns. It is used by the report package to show
// sampling-estimate distributions.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxCount := h.MaxCount()
	var sb strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&sb, "%10.3f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return sb.String()
}
