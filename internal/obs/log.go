// Structured, leveled logging for the serving layer. A Logger emits
// wide events — one line per occurrence with the context attached as
// key=value attributes — instead of interpolated prose, so the same
// record is greppable text for a human, machine-parseable JSON for
// tooling, and (via Hook) an exportable Event for durable storage.
//
// Design constraints, shared with the rest of obs:
//
//   - stdlib only, no allocation-heavy reflection on the hot path;
//   - every method is nil-receiver safe, so call sites need no logger
//     checks and a disabled logger costs one comparison;
//   - the clock is injected (LoggerOptions.Now), so golden tests of the
//     rendered output stay byte-identical run to run;
//   - attributes render in call order — never via a map — keeping the
//     output deterministic (the maporder invariant).
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities. The zero value is LevelInfo, so a
// zero-valued LoggerOptions gives a conventional production logger.
type Level int8

// Severities, least to most severe.
const (
	LevelDebug Level = iota - 1
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level as it renders in output.
func (l Level) String() string {
	switch {
	case l <= LevelDebug:
		return "debug"
	case l == LevelInfo:
		return "info"
	case l == LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel maps a level name ("debug", "info", "warn", "error") to
// its Level, for CLI -log-level flags.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("obs: unknown log level %q", s)
	}
}

// Event is one emitted log record: what a Hook receives and what the
// server's durable event export journals.
type Event struct {
	Time  time.Time `json:"ts"`
	Level Level     `json:"-"`
	Msg   string    `json:"msg"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// KV builds one attribute. Attrs render in argument order.
func KV(key string, value interface{}) Attr { return Attr{Key: key, Value: value} }

// LoggerOptions tunes NewLogger. The zero value is a text logger at
// LevelInfo on the wall clock with no metrics or hook.
type LoggerOptions struct {
	// Level is the minimum severity emitted.
	Level Level
	// JSON switches the line format from key=value text to one JSON
	// object per line.
	JSON bool
	// Now is the clock stamped on events; nil means time.Now. Inject a
	// fixed clock to make rendered output byte-identical in tests.
	Now func() time.Time
	// Registry, when non-nil, counts emitted events into
	// flare_log_events_total{level}.
	Registry *Registry
	// Hook, when non-nil, receives every emitted Event after the line is
	// written (the durable event-export tap). It runs on the caller's
	// goroutine and must not block.
	Hook func(Event)
}

// Logger is a leveled structured logger. Loggers derived via With share
// the parent's writer, lock, and configuration. A nil *Logger is valid
// and silently discards everything.
type Logger struct {
	mu     *sync.Mutex
	out    io.Writer
	level  Level
	json   bool
	now    func() time.Time
	hook   func(Event)
	counts map[Level]*Counter
	base   []Attr
}

// NewLogger builds a logger writing one event per line to w.
func NewLogger(w io.Writer, opts LoggerOptions) *Logger {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	l := &Logger{
		mu:    &sync.Mutex{},
		out:   w,
		level: opts.Level,
		json:  opts.JSON,
		now:   opts.Now,
		hook:  opts.Hook,
	}
	if opts.Registry != nil {
		l.counts = make(map[Level]*Counter, 4)
		for _, lv := range []Level{LevelDebug, LevelInfo, LevelWarn, LevelError} {
			l.counts[lv] = opts.Registry.Counter("flare_log_events_total",
				"log events emitted by level", "level", lv.String())
		}
	}
	return l
}

// Enabled reports whether events at lv would be emitted.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.level
}

// With returns a logger that attaches attrs to every event it emits,
// after the parent's bound attrs and before the per-call ones.
func (l *Logger) With(attrs ...Attr) *Logger {
	if l == nil || len(attrs) == 0 {
		return l
	}
	child := *l
	child.base = append(append([]Attr(nil), l.base...), attrs...)
	return &child
}

// Debug emits a debug event.
func (l *Logger) Debug(msg string, attrs ...Attr) { l.emit(LevelDebug, msg, attrs) }

// Info emits an info event.
func (l *Logger) Info(msg string, attrs ...Attr) { l.emit(LevelInfo, msg, attrs) }

// Warn emits a warning event.
func (l *Logger) Warn(msg string, attrs ...Attr) { l.emit(LevelWarn, msg, attrs) }

// Error emits an error event.
func (l *Logger) Error(msg string, attrs ...Attr) { l.emit(LevelError, msg, attrs) }

func (l *Logger) emit(lv Level, msg string, attrs []Attr) {
	if !l.Enabled(lv) {
		return
	}
	ev := Event{Time: l.now(), Level: lv, Msg: msg}
	if len(l.base) > 0 || len(attrs) > 0 {
		ev.Attrs = make([]Attr, 0, len(l.base)+len(attrs))
		ev.Attrs = append(ev.Attrs, l.base...)
		ev.Attrs = append(ev.Attrs, attrs...)
	}
	var buf []byte
	if l.json {
		buf = appendJSONEvent(nil, ev)
	} else {
		buf = appendTextEvent(nil, ev)
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	if l.out != nil {
		// A lost log line has no caller to report to; the next write
		// either works or the process is past caring.
		_, _ = l.out.Write(buf)
	}
	l.mu.Unlock()
	if l.counts != nil {
		l.counts[lv].Inc()
	}
	if l.hook != nil {
		l.hook(ev)
	}
}

// timeFormat keeps millisecond precision — enough to order events,
// short enough to scan — and renders injected test clocks verbatim.
const timeFormat = "2006-01-02T15:04:05.000Z07:00"

// appendTextEvent renders `ts=... level=... msg=... k=v ...`.
func appendTextEvent(buf []byte, ev Event) []byte {
	buf = append(buf, "ts="...)
	buf = ev.Time.AppendFormat(buf, timeFormat)
	buf = append(buf, " level="...)
	buf = append(buf, ev.Level.String()...)
	buf = append(buf, " msg="...)
	buf = appendTextValue(buf, ev.Msg)
	for _, a := range ev.Attrs {
		buf = append(buf, ' ')
		buf = append(buf, a.Key...)
		buf = append(buf, '=')
		buf = appendTextValue(buf, a.Value)
	}
	return buf
}

// appendTextValue renders one attribute value; strings are quoted only
// when they contain spaces, quotes, or control characters.
func appendTextValue(buf []byte, v interface{}) []byte {
	switch x := v.(type) {
	case string:
		if strings.ContainsAny(x, " \t\n\"=") || x == "" {
			return strconv.AppendQuote(buf, x)
		}
		return append(buf, x...)
	case error:
		return appendTextValue(buf, x.Error())
	case time.Duration:
		return append(buf, x.String()...)
	case int:
		return strconv.AppendInt(buf, int64(x), 10)
	case int64:
		return strconv.AppendInt(buf, x, 10)
	case uint64:
		return strconv.AppendUint(buf, x, 10)
	case float64:
		return strconv.AppendFloat(buf, x, 'g', -1, 64)
	case bool:
		return strconv.AppendBool(buf, x)
	default:
		return appendTextValue(buf, fmt.Sprint(x))
	}
}

// appendJSONEvent renders one JSON object with attrs flattened in
// order after the reserved ts/level/msg keys.
func appendJSONEvent(buf []byte, ev Event) []byte {
	buf = append(buf, `{"ts":"`...)
	buf = ev.Time.AppendFormat(buf, timeFormat)
	buf = append(buf, `","level":"`...)
	buf = append(buf, ev.Level.String()...)
	buf = append(buf, `","msg":`...)
	buf = appendJSONValue(buf, ev.Msg)
	for _, a := range ev.Attrs {
		buf = append(buf, ',')
		buf = appendJSONValue(buf, a.Key)
		buf = append(buf, ':')
		buf = appendJSONValue(buf, a.Value)
	}
	return append(buf, '}')
}

func appendJSONValue(buf []byte, v interface{}) []byte {
	switch x := v.(type) {
	case error:
		v = x.Error()
	case time.Duration:
		v = x.String()
	}
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	return append(buf, b...)
}

// Std returns a *log.Logger shim that forwards every line it prints as
// a structured event at lv — the bridge for call sites (and library
// hooks) that still want the stdlib interface.
func (l *Logger) Std(lv Level) *log.Logger {
	return log.New(&levelWriter{l: l, lv: lv}, "", 0)
}

type levelWriter struct {
	l  *Logger
	lv Level
}

func (w *levelWriter) Write(p []byte) (int, error) {
	w.l.emit(w.lv, strings.TrimRight(string(p), "\n"), nil)
	return len(p), nil
}

type loggerKey struct{}

// WithLogger returns a context carrying the logger, alongside whatever
// tracer/span the context already holds.
func WithLogger(ctx context.Context, l *Logger) context.Context {
	return context.WithValue(ctx, loggerKey{}, l)
}

// LoggerFrom returns the context's logger, or nil (which is safe to
// use) when none is attached.
func LoggerFrom(ctx context.Context) *Logger {
	l, _ := ctx.Value(loggerKey{}).(*Logger)
	return l
}
