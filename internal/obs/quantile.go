// Histogram state extraction and quantile estimation. The SLO layer
// needs "p99 over the last five minutes", but a Histogram is cumulative
// over the process lifetime — so consumers capture HistogramStates
// periodically, subtract two of them to get a windowed delta, and
// estimate quantiles from the delta's bucket counts.
package obs

import "sort"

// NewHistogram returns a standalone histogram that is not attached to
// any registry. Load generators and other client-side tools use it to
// record per-worker latencies without polluting the process registry;
// the per-worker states then combine through HistogramState.Merge.
// buckets are ascending finite upper bounds; nil means
// DefaultLatencyBuckets. The slice is copied and sorted.
func NewHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefaultLatencyBuckets()
	}
	b := make([]float64, len(buckets))
	copy(b, buckets)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// HistogramState is a point-in-time copy of a histogram's cumulative
// buckets. States from the same family subtract cleanly because bucket
// bounds are fixed at first registration.
type HistogramState struct {
	// Bounds are the ascending finite upper bounds; the +Inf bucket is
	// Cumulative's final entry.
	Bounds []float64
	// Cumulative has len(Bounds)+1 entries; the last equals Count.
	Cumulative []uint64
	Sum        float64
	Count      uint64
}

// State returns the histogram's current cumulative state.
func (h *Histogram) State() HistogramState {
	bounds, cum, sum, count := h.snapshot()
	return HistogramState{Bounds: bounds, Cumulative: cum, Sum: sum, Count: count}
}

// Sub returns the per-bucket delta s minus prev — the observations that
// landed between the two captures. A mismatched or zero prev (different
// bucket count, or counts that ran backwards after a restart) yields s
// unchanged, so callers degrade to lifetime totals instead of panicking.
func (s HistogramState) Sub(prev HistogramState) HistogramState {
	if len(prev.Cumulative) != len(s.Cumulative) || prev.Count > s.Count {
		return s
	}
	out := HistogramState{
		Bounds:     s.Bounds,
		Cumulative: make([]uint64, len(s.Cumulative)),
		Sum:        s.Sum - prev.Sum,
		Count:      s.Count - prev.Count,
	}
	for i := range s.Cumulative {
		if prev.Cumulative[i] > s.Cumulative[i] {
			return s
		}
		out.Cumulative[i] = s.Cumulative[i] - prev.Cumulative[i]
	}
	return out
}

// Merge returns the element-wise sum of s and o — the combined
// distribution of two recorders sharing one bucket layout (e.g. the
// per-worker histograms of a load generator). Merging states with
// mismatched bucket counts returns s unchanged, mirroring Sub's
// degrade-don't-panic convention; an empty s adopts o wholesale.
func (s HistogramState) Merge(o HistogramState) HistogramState {
	if len(s.Cumulative) == 0 {
		return o
	}
	if len(o.Cumulative) == 0 {
		return s
	}
	if len(o.Cumulative) != len(s.Cumulative) {
		return s
	}
	out := HistogramState{
		Bounds:     s.Bounds,
		Cumulative: make([]uint64, len(s.Cumulative)),
		Sum:        s.Sum + o.Sum,
		Count:      s.Count + o.Count,
	}
	for i := range s.Cumulative {
		out.Cumulative[i] = s.Cumulative[i] + o.Cumulative[i]
	}
	return out
}

// Quantile estimates the q-quantile (0 < q < 1) of the state's samples
// by linear interpolation inside the containing bucket — the standard
// Prometheus histogram_quantile estimate. Samples in the +Inf bucket
// clamp to the largest finite bound; an empty state returns 0.
func (s HistogramState) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Cumulative) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	for i, c := range s.Cumulative {
		if float64(c) < rank {
			continue
		}
		if i == len(s.Bounds) {
			// +Inf bucket: no finite upper bound to interpolate toward.
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		var below uint64
		if i > 0 {
			lo = s.Bounds[i-1]
			below = s.Cumulative[i-1]
		}
		in := float64(c - below)
		if in <= 0 {
			return s.Bounds[i]
		}
		return lo + (s.Bounds[i]-lo)*(rank-float64(below))/in
	}
	return s.Bounds[len(s.Bounds)-1]
}

// HistogramState aggregates every series of the named histogram family
// into one state (element-wise sum of cumulative buckets). ok is false
// when the family does not exist, is not a histogram, or has no series.
// Series whose bucket layout disagrees with the family's first series
// are skipped — possible only if registrations passed different bucket
// slices, which the registry's first-registration rule discourages.
func (r *Registry) HistogramState(name string) (HistogramState, bool) {
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	if f == nil || f.typ != typeHistogram {
		return HistogramState{}, false
	}
	f.mu.Lock()
	insts := make([]*Histogram, 0, len(f.order))
	for _, k := range f.order {
		if h, ok := f.series[k].inst.(*Histogram); ok {
			insts = append(insts, h)
		}
	}
	f.mu.Unlock()
	var agg HistogramState
	for _, h := range insts {
		st := h.State()
		if agg.Cumulative == nil {
			agg = st
			continue
		}
		if len(st.Cumulative) != len(agg.Cumulative) {
			continue
		}
		for i := range st.Cumulative {
			agg.Cumulative[i] += st.Cumulative[i]
		}
		agg.Sum += st.Sum
		agg.Count += st.Count
	}
	return agg, agg.Cumulative != nil
}

// CounterFamilyTotal sums every series of the named counter family;
// match filters by the series' rendered label suffix ({k="v",...}; ""
// for the unlabelled series) and nil matches everything. ok is false
// when the family does not exist or is not a counter family.
func (r *Registry) CounterFamilyTotal(name string, match func(labels string) bool) (uint64, bool) {
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	if f == nil || f.typ != typeCounter {
		return 0, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var total uint64
	for _, k := range f.order {
		if match != nil && !match(f.series[k].labels) {
			continue
		}
		if c, ok := f.series[k].inst.(*Counter); ok {
			total += c.Value()
		}
	}
	return total, true
}
