// Package obs is FLARE's self-measurement layer: a dependency-free
// telemetry registry (counters, gauges, fixed-bucket histograms) with
// Prometheus-text and JSON exposition, and lightweight span tracing for
// recording nested pipeline stage timings.
//
// The paper's whole argument is a cost/accuracy trade-off; obs is how the
// reproduction measures its *own* cost. Every pipeline stage records a
// span (surfaced at /api/trace and via flare -trace-out) and observes its
// duration into the stage-timing histogram (surfaced at /metrics).
//
// The registry is safe for concurrent use. Metric identity is the metric
// name plus an optional set of label pairs; repeated registrations of the
// same identity return the same instrument, so hot paths can call
// Registry.Counter(...)/Histogram(...) inline without caching handles.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricType discriminates instrument families.
type metricType int

const (
	typeCounter metricType = iota + 1
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta (compare-and-swap loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds, +Inf implicit
	counts  []uint64  // per-bucket (non-cumulative) counts, len(bounds)+1
	sum     float64
	samples uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.samples++
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns bounds plus cumulative bucket counts (including +Inf).
func (h *Histogram) snapshot() (bounds []float64, cumulative []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = h.bounds
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cumulative[i] = acc
	}
	return bounds, cumulative, h.sum, h.samples
}

// DefaultLatencyBuckets spans 100µs to 60s, suitable both for HTTP
// handlers and for multi-second pipeline stages.
func DefaultLatencyBuckets() []float64 {
	return []float64{1e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}
}

// series is one labelled instrument within a family.
type series struct {
	labels string // rendered {k="v",...} suffix, "" when unlabelled
	inst   interface{}
}

// family groups every labelled series of one metric name.
type family struct {
	name string
	help string
	typ  metricType

	mu     sync.Mutex
	series map[string]*series
	order  []string
}

// Registry holds metric families. The zero value is not usable; create
// with NewRegistry or use the package Default.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Library code that has no
// registry plumbed in (dcsim's scheduler counters) records here; the
// flare-server surfaces it at /metrics.
func Default() *Registry { return defaultRegistry }

// family returns (creating if needed) the named family, panicking on a
// type mismatch — mixing types under one name is a programming error the
// exposition format cannot represent.
func (r *Registry) family(name, help string, typ metricType) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// renderLabels builds the canonical {k="v",...} suffix from variadic
// key/value pairs, sorting by key for a stable identity.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", kv))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// get returns (creating via mk if needed) the series for the label set.
func (f *family) get(kv []string, mk func() interface{}) interface{} {
	key := renderLabels(kv)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, inst: mk()}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s.inst
}

// Counter returns the counter for name and label pairs, registering it on
// first use. labels are alternating key, value strings.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.family(name, help, typeCounter)
	return f.get(labels, func() interface{} { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for name and label pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.family(name, help, typeGauge)
	return f.get(labels, func() interface{} { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram for name and label pairs. buckets are
// ascending upper bounds; nil means DefaultLatencyBuckets. Buckets are
// fixed by the first registration of the family's first series.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	f := r.family(name, help, typeHistogram)
	return f.get(labels, func() interface{} {
		if buckets == nil {
			buckets = DefaultLatencyBuckets()
		}
		b := make([]float64, len(buckets))
		copy(b, buckets)
		sort.Float64s(b)
		return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
	}).(*Histogram)
}

// sortedFamilies returns families sorted by name for deterministic
// exposition.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		sers := make([]*series, 0, len(keys))
		for _, k := range keys {
			sers = append(sers, f.series[k])
		}
		f.mu.Unlock()
		sort.Slice(sers, func(i, j int) bool { return sers[i].labels < sers[j].labels })

		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range sers {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch inst := s.inst.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, inst.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(inst.Value()))
		return err
	case *Histogram:
		bounds, cum, sum, count := inst.snapshot()
		for i, le := range bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, mergeLE(s.labels, formatFloat(le)), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, mergeLE(s.labels, "+Inf"), cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, count)
		return err
	default:
		return fmt.Errorf("obs: unknown instrument type %T", inst)
	}
}

// mergeLE splices the le="..." label into an existing rendered label set.
func mergeLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// formatFloat renders a float compactly ("0.005", not "5e-03"), matching
// what scrapers expect for bucket bounds and sums.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SeriesSnapshot is one labelled series in a JSON snapshot.
type SeriesSnapshot struct {
	Labels string `json:"labels,omitempty"`
	// Value holds the counter count or gauge value; nil for histograms.
	Value *float64 `json:"value,omitempty"`
	// Histogram fields.
	Count   uint64            `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// FamilySnapshot is one metric family in a JSON snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot returns the registry contents as a JSON-marshallable value.
func (r *Registry) Snapshot() []FamilySnapshot {
	fams := r.sortedFamilies()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		sers := make([]*series, 0, len(keys))
		for _, k := range keys {
			sers = append(sers, f.series[k])
		}
		f.mu.Unlock()
		fs := FamilySnapshot{Name: f.name, Type: f.typ.String(), Help: f.help}
		for _, s := range sers {
			ss := SeriesSnapshot{Labels: s.labels}
			switch inst := s.inst.(type) {
			case *Counter:
				v := float64(inst.Value())
				ss.Value = &v
			case *Gauge:
				v := inst.Value()
				ss.Value = &v
			case *Histogram:
				bounds, cum, sum, count := inst.snapshot()
				ss.Count = count
				ss.Sum = sum
				ss.Buckets = make(map[string]uint64, len(bounds)+1)
				for i, le := range bounds {
					ss.Buckets[formatFloat(le)] = cum[i]
				}
				ss.Buckets["+Inf"] = cum[len(cum)-1]
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
