package obs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock returns a deterministic strictly-increasing clock so golden
// log output is byte-identical run to run.
func fixedClock() func() time.Time {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t := base.Add(time.Duration(n) * time.Millisecond)
		n++
		return t
	}
}

func TestTextGolden(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LoggerOptions{Now: fixedClock()})
	l.Info("server started", KV("addr", ":8080"), KV("durable", true))
	l.Warn("slow request", KV("route", "/api/estimate"), KV("ms", 1250.5))
	l.Error("persist failed", KV("err", errors.New("wal: disk full")), KV("attempt", 3))

	want := "" +
		"ts=2026-08-07T12:00:00.000Z level=info msg=\"server started\" addr=:8080 durable=true\n" +
		"ts=2026-08-07T12:00:00.001Z level=warn msg=\"slow request\" route=/api/estimate ms=1250.5\n" +
		"ts=2026-08-07T12:00:00.002Z level=error msg=\"persist failed\" err=\"wal: disk full\" attempt=3\n"
	if got := b.String(); got != want {
		t.Errorf("text output mismatch:\ngot:\n%swant:\n%s", got, want)
	}
}

func TestJSONGolden(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LoggerOptions{JSON: true, Now: fixedClock()})
	l.Info("trace exported", KV("id", "req-1"), KV("spans", 4), KV("dur", 250*time.Millisecond))

	want := `{"ts":"2026-08-07T12:00:00.000Z","level":"info","msg":"trace exported","id":"req-1","spans":4,"dur":"250ms"}` + "\n"
	if got := b.String(); got != want {
		t.Errorf("json output mismatch:\ngot:  %swant: %s", got, want)
	}
}

func TestLevelFiltering(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LoggerOptions{Level: LevelWarn, Now: fixedClock()})
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	out := b.String()
	if strings.Contains(out, "msg=d") || strings.Contains(out, "msg=i") {
		t.Errorf("filtered levels leaked:\n%s", out)
	}
	if !strings.Contains(out, "msg=w") || !strings.Contains(out, "msg=e") {
		t.Errorf("warn/error missing:\n%s", out)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Error("Enabled disagrees with level filter")
	}
}

func TestWithBindsAttrs(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LoggerOptions{Now: fixedClock()})
	child := l.With(KV("component", "server"), KV("node", 1))
	child.Info("ready", KV("routes", 6))

	want := "ts=2026-08-07T12:00:00.000Z level=info msg=ready component=server node=1 routes=6\n"
	if got := b.String(); got != want {
		t.Errorf("bound attrs wrong:\ngot:  %swant: %s", got, want)
	}
	// With must not mutate the parent.
	b.Reset()
	l.Info("bare")
	if strings.Contains(b.String(), "component") {
		t.Errorf("parent inherited child attrs: %s", b.String())
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x", KV("k", 1))
	l.Warn("x")
	l.Error("x")
	if l.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
	if l.With(KV("a", 1)) != nil {
		t.Error("With on nil logger should stay nil")
	}
}

func TestLoggerCountsEvents(t *testing.T) {
	reg := NewRegistry()
	l := NewLogger(io.Discard, LoggerOptions{Level: LevelDebug, Registry: reg, Now: fixedClock()})
	l.Debug("d")
	l.Info("i")
	l.Info("i2")
	l.Error("e")
	for lv, want := range map[Level]uint64{LevelDebug: 1, LevelInfo: 2, LevelWarn: 0, LevelError: 1} {
		got := reg.Counter("flare_log_events_total", "", "level", lv.String()).Value()
		if got != want {
			t.Errorf("flare_log_events_total{level=%q} = %d, want %d", lv, got, want)
		}
	}
}

func TestLoggerHook(t *testing.T) {
	var events []Event
	l := NewLogger(io.Discard, LoggerOptions{
		Now:  fixedClock(),
		Hook: func(ev Event) { events = append(events, ev) },
	})
	l.Info("a", KV("k", "v"))
	l.Warn("b")
	if len(events) != 2 {
		t.Fatalf("hook events = %d, want 2", len(events))
	}
	if events[0].Msg != "a" || events[0].Level != LevelInfo ||
		len(events[0].Attrs) != 1 || events[0].Attrs[0].Key != "k" {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Msg != "b" || events[1].Level != LevelWarn {
		t.Errorf("event 1 = %+v", events[1])
	}
}

func TestStdShim(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LoggerOptions{Now: fixedClock()})
	std := l.Std(LevelWarn)
	std.Printf("legacy %s line", "printf")
	want := "ts=2026-08-07T12:00:00.000Z level=warn msg=\"legacy printf line\"\n"
	if got := b.String(); got != want {
		t.Errorf("std shim output:\ngot:  %swant: %s", got, want)
	}
}

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want Level
		ok   bool
	}{
		{"debug", LevelDebug, true},
		{"info", LevelInfo, true},
		{"", LevelInfo, true},
		{"WARN", LevelWarn, true},
		{"warning", LevelWarn, true},
		{"error", LevelError, true},
		{"fatal", LevelInfo, false},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestTextValueQuoting(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LoggerOptions{Now: fixedClock()})
	l.Info("q",
		KV("empty", ""),
		KV("eq", "a=b"),
		KV("nl", "a\nb"),
		KV("plain", "ok"),
		KV("stringer", time.Duration(1500)*time.Millisecond))
	out := b.String()
	for _, want := range []string{`empty=""`, `eq="a=b"`, `nl="a\nb"`, " plain=ok", "stringer=1.5s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONAttrsStayOrdered(t *testing.T) {
	// Attribute order must be call order, never map order: emit many keys
	// and assert their rendered positions (the maporder invariant applied
	// to log output).
	var b strings.Builder
	l := NewLogger(&b, LoggerOptions{JSON: true, Now: fixedClock()})
	attrs := make([]Attr, 10)
	for i := range attrs {
		attrs[i] = KV(fmt.Sprintf("k%02d", i), i)
	}
	l.Info("ordered", attrs...)
	out := b.String()
	last := -1
	for i := range attrs {
		pos := strings.Index(out, fmt.Sprintf(`"k%02d"`, i))
		if pos < 0 || pos < last {
			t.Fatalf("attr k%02d out of order (pos %d, prev %d):\n%s", i, pos, last, out)
		}
		last = pos
	}
}

func TestContextPropagation(t *testing.T) {
	l := NewLogger(io.Discard, LoggerOptions{})
	ctx := WithLogger(context.Background(), l)
	if LoggerFrom(ctx) != l {
		t.Error("LoggerFrom did not return the attached logger")
	}
	if LoggerFrom(context.Background()) != nil {
		t.Error("LoggerFrom on bare context should be nil")
	}
}

// TestConcurrentLogging hammers one logger from many goroutines; run
// with -race. Every line must come out whole (no interleaving).
func TestConcurrentLogging(t *testing.T) {
	var b syncBuffer
	reg := NewRegistry()
	l := NewLogger(&b, LoggerOptions{Registry: reg, Now: fixedClock()})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wl := l.With(KV("worker", w))
			for i := 0; i < 50; i++ {
				wl.Info("tick", KV("i", i))
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("lines = %d, want 400", len(lines))
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "ts=") || !strings.Contains(ln, "msg=tick") {
			t.Fatalf("mangled line: %q", ln)
		}
	}
	if got := reg.Counter("flare_log_events_total", "", "level", "info").Value(); got != 400 {
		t.Errorf("event count = %d, want 400", got)
	}
}

type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func BenchmarkEventLog(b *testing.B) {
	l := NewLogger(io.Discard, LoggerOptions{Now: fixedClock()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Info("request complete",
			KV("route", "/api/estimate"), KV("code", 200), KV("ms", 12.5))
	}
}

func BenchmarkEventLogJSON(b *testing.B) {
	l := NewLogger(io.Discard, LoggerOptions{JSON: true, Now: fixedClock()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Info("request complete",
			KV("route", "/api/estimate"), KV("code", 200), KV("ms", 12.5))
	}
}

func BenchmarkEventLogDisabled(b *testing.B) {
	l := NewLogger(io.Discard, LoggerOptions{Level: LevelWarn})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Debug("suppressed", KV("route", "/api/estimate"), KV("code", 200))
	}
}
