package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flare_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same identity returns the same instrument.
	if r.Counter("flare_test_total", "a counter") != c {
		t.Error("re-registration returned a different counter")
	}

	g := r.Gauge("flare_test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestLabelledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	hit := r.Counter("flare_cache_total", "cache lookups", "result", "hit")
	miss := r.Counter("flare_cache_total", "cache lookups", "result", "miss")
	if hit == miss {
		t.Fatal("differently labelled series share a counter")
	}
	hit.Inc()
	hit.Inc()
	miss.Inc()
	// Label order must not matter for identity.
	alias := r.Counter("flare_multi_total", "x", "b", "2", "a", "1")
	if alias != r.Counter("flare_multi_total", "x", "a", "1", "b", "2") {
		t.Error("label order changed series identity")
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("flare_lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Errorf("sum = %v, want 56.05", h.Sum())
	}
	bounds, cum, _, _ := h.snapshot()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	want := []uint64{1, 3, 4, 5} // cumulative: <=0.1, <=1, <=10, +Inf
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], w)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("flare_reqs_total", "requests", "path", "/healthz", "code", "200").Add(3)
	r.Gauge("flare_scenarios", "population size").Set(448)
	r.Histogram("flare_lat_seconds", "latency", []float64{0.5, 1}).Observe(0.25)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP flare_reqs_total requests",
		"# TYPE flare_reqs_total counter",
		`flare_reqs_total{code="200",path="/healthz"} 3`,
		"# TYPE flare_scenarios gauge",
		"flare_scenarios 448",
		"# TYPE flare_lat_seconds histogram",
		`flare_lat_seconds_bucket{le="0.5"} 1`,
		`flare_lat_seconds_bucket{le="1"} 1`,
		`flare_lat_seconds_bucket{le="+Inf"} 1`,
		"flare_lat_seconds_sum 0.25",
		"flare_lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestExpositionEscapesLabelValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("flare_esc_total", "", "k", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `{k="a\"b\\c\nd"}`) {
		t.Errorf("label escaping wrong: %s", b.String())
	}
}

func TestExpositionEscapesEachSpecialCharacter(t *testing.T) {
	// Per-character coverage of the text-format escapes: backslash must
	// escape first (otherwise the \n and \" escapes get double-escaped).
	cases := []struct{ raw, rendered string }{
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{"\\\"\n", `\\\"\n`},
		{"plain", "plain"},
	}
	for _, c := range cases {
		r := NewRegistry()
		r.Counter("flare_esc_total", "", "v", c.raw).Inc()
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		want := `flare_esc_total{v="` + c.rendered + `"} 1`
		if !strings.Contains(b.String(), want) {
			t.Errorf("value %q: exposition missing %q in:\n%s", c.raw, want, b.String())
		}
	}
}

func TestHistogramInfBucketInvariant(t *testing.T) {
	// The +Inf bucket is cumulative: it must always equal _count, for
	// every labelled series, including samples above the top bound and
	// series with zero samples.
	r := NewRegistry()
	h := r.Histogram("flare_inv_seconds", "", []float64{0.1, 1}, "route", "/a")
	for _, v := range []float64{0.05, 0.5, 50, 100} {
		h.Observe(v)
	}
	r.Histogram("flare_inv_seconds", "", []float64{0.1, 1}, "route", "/b") // no samples

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`flare_inv_seconds_bucket{route="/a",le="0.1"} 1`,
		`flare_inv_seconds_bucket{route="/a",le="1"} 2`,
		`flare_inv_seconds_bucket{route="/a",le="+Inf"} 4`,
		`flare_inv_seconds_count{route="/a"} 4`,
		`flare_inv_seconds_bucket{route="/b",le="+Inf"} 0`,
		`flare_inv_seconds_count{route="/b"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Cross-check via snapshot: +Inf == count and buckets monotone.
	bounds, cum, _, count := h.snapshot()
	if cum[len(cum)-1] != count {
		t.Errorf("+Inf cumulative %d != count %d", cum[len(cum)-1], count)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Errorf("cumulative not monotone at %d: %v (bounds %v)", i, cum, bounds)
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("flare_a_total", "help a").Add(7)
	r.Histogram("flare_h_seconds", "", []float64{1}).Observe(2)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot families = %d, want 2", len(snap))
	}
	if snap[0].Name != "flare_a_total" || snap[0].Type != "counter" {
		t.Errorf("family 0 = %+v", snap[0])
	}
	if *snap[0].Series[0].Value != 7 {
		t.Errorf("counter value = %v", *snap[0].Series[0].Value)
	}
	h := snap[1].Series[0]
	if h.Count != 1 || h.Buckets["+Inf"] != 1 || h.Buckets["1"] != 0 {
		t.Errorf("histogram series = %+v", h)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("type mismatch did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("flare_x", "")
	r.Gauge("flare_x", "")
}

// TestConcurrentRegistryAccess exercises every instrument from many
// goroutines; run with -race.
func TestConcurrentRegistryAccess(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("flare_conc_total", "c", "w", string(rune('a'+w%4))).Inc()
				r.Gauge("flare_conc_gauge", "g").Add(1)
				r.Histogram("flare_conc_seconds", "h", nil).Observe(float64(i) / 100)
				if i%50 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b)
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	var total uint64
	for _, l := range []string{"a", "b", "c", "d"} {
		total += r.Counter("flare_conc_total", "c", "w", l).Value()
	}
	if total != workers*iters {
		t.Errorf("counter total = %d, want %d", total, workers*iters)
	}
	if got := r.Histogram("flare_conc_seconds", "h", nil).Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("flare_conc_gauge", "g").Value(); got != workers*iters {
		t.Errorf("gauge = %v, want %d", got, workers*iters)
	}
}
