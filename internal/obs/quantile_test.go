package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramStateAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("flare_q_seconds", "", []float64{0.1, 0.2, 0.5, 1})
	// 50 samples in (0, 0.1], 40 in (0.1, 0.2], 9 in (0.2, 0.5], 1 in +Inf.
	for i := 0; i < 50; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 40; i++ {
		h.Observe(0.15)
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.3)
	}
	h.Observe(5)

	st := h.State()
	if st.Count != 100 {
		t.Fatalf("count = %d, want 100", st.Count)
	}
	if got := len(st.Cumulative); got != 5 {
		t.Fatalf("cumulative buckets = %d, want 5", got)
	}
	if st.Cumulative[4] != st.Count {
		t.Errorf("+Inf cumulative %d != count %d", st.Cumulative[4], st.Count)
	}

	// p50: rank 50 sits exactly at the first bucket's upper edge.
	if p50 := st.Quantile(0.5); math.Abs(p50-0.1) > 1e-9 {
		t.Errorf("p50 = %v, want 0.1", p50)
	}
	// p90: rank 90 at the second bucket's upper edge.
	if p90 := st.Quantile(0.9); math.Abs(p90-0.2) > 1e-9 {
		t.Errorf("p90 = %v, want 0.2", p90)
	}
	// p95: rank 95 interpolates inside (0.2, 0.5] — 5 of its 9 samples in.
	wantP95 := 0.2 + 0.3*5/9
	if p95 := st.Quantile(0.95); math.Abs(p95-wantP95) > 1e-9 {
		t.Errorf("p95 = %v, want %v", p95, wantP95)
	}
	// p999 lands in the +Inf bucket and clamps to the top finite bound.
	if p999 := st.Quantile(0.999); p999 != 1 {
		t.Errorf("p999 = %v, want clamp to 1", p999)
	}
}

func TestHistogramStateSub(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("flare_sub_seconds", "", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	before := h.State()
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(20)
	after := h.State()

	delta := after.Sub(before)
	if delta.Count != 3 {
		t.Errorf("delta count = %d, want 3", delta.Count)
	}
	if math.Abs(delta.Sum-21) > 1e-9 {
		t.Errorf("delta sum = %v, want 21", delta.Sum)
	}
	want := []uint64{2, 2, 3}
	for i, w := range want {
		if delta.Cumulative[i] != w {
			t.Errorf("delta cumulative[%d] = %d, want %d", i, delta.Cumulative[i], w)
		}
	}

	// Mismatched prev (restart: counts ran backwards) degrades to the
	// lifetime state rather than underflowing.
	if got := before.Sub(after); got.Count != before.Count {
		t.Errorf("backwards Sub = %+v, want before unchanged", got)
	}
	if got := after.Sub(HistogramState{}); got.Count != after.Count {
		t.Errorf("zero-prev Sub = %+v, want after unchanged", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramState
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	one := HistogramState{Bounds: []float64{1}, Cumulative: []uint64{1, 1}, Count: 1}
	if got := one.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("single-sample p50 = %v, want 0.5", got)
	}
	// Out-of-range q clamps.
	if got := one.Quantile(2); got != 1 {
		t.Errorf("q=2 -> %v, want 1", got)
	}
	if got := one.Quantile(-1); got != 0 {
		t.Errorf("q=-1 -> %v, want 0", got)
	}
}

func TestRegistryHistogramStateSumsSeries(t *testing.T) {
	r := NewRegistry()
	r.Histogram("flare_fam_seconds", "", []float64{1}, "route", "/a").Observe(0.5)
	r.Histogram("flare_fam_seconds", "", []float64{1}, "route", "/b").Observe(0.5)
	r.Histogram("flare_fam_seconds", "", []float64{1}, "route", "/b").Observe(2)

	st, ok := r.HistogramState("flare_fam_seconds")
	if !ok {
		t.Fatal("HistogramState not ok for existing family")
	}
	if st.Count != 3 {
		t.Errorf("summed count = %d, want 3", st.Count)
	}
	if st.Cumulative[0] != 2 || st.Cumulative[1] != 3 {
		t.Errorf("summed cumulative = %v, want [2 3]", st.Cumulative)
	}
	if math.Abs(st.Sum-3) > 1e-9 {
		t.Errorf("summed sum = %v, want 3", st.Sum)
	}

	if _, ok := r.HistogramState("flare_missing_seconds"); ok {
		t.Error("HistogramState ok for missing family")
	}
	r.Counter("flare_not_hist_total", "").Inc()
	if _, ok := r.HistogramState("flare_not_hist_total"); ok {
		t.Error("HistogramState ok for counter family")
	}
}

func TestCounterFamilyTotal(t *testing.T) {
	r := NewRegistry()
	r.Counter("flare_cft_total", "", "code", "200").Add(7)
	r.Counter("flare_cft_total", "", "code", "500").Add(2)
	r.Counter("flare_cft_total", "", "code", "503").Add(1)

	if got, ok := r.CounterFamilyTotal("flare_cft_total", nil); !ok || got != 10 {
		t.Errorf("total = %d, ok=%v; want 10, true", got, ok)
	}
	errs, ok := r.CounterFamilyTotal("flare_cft_total", func(labels string) bool {
		return labels == `{code="500"}` || labels == `{code="503"}`
	})
	if !ok || errs != 3 {
		t.Errorf("filtered total = %d, ok=%v; want 3, true", errs, ok)
	}
	if _, ok := r.CounterFamilyTotal("flare_absent_total", nil); ok {
		t.Error("total ok for missing family")
	}
}

func TestNewHistogramStandalone(t *testing.T) {
	h := NewHistogram([]float64{0.5, 0.1, 1}) // unsorted on purpose
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(2)
	st := h.State()
	if st.Count != 3 {
		t.Fatalf("count = %d, want 3", st.Count)
	}
	want := []float64{0.1, 0.5, 1}
	for i, b := range st.Bounds {
		if b != want[i] {
			t.Fatalf("bounds = %v, want %v (sorted)", st.Bounds, want)
		}
	}
	// 1 sample <= 0.1, 2 <= 0.5, 2 <= 1, 3 in +Inf cumulative.
	wantCum := []uint64{1, 2, 2, 3}
	for i, c := range st.Cumulative {
		if c != wantCum[i] {
			t.Fatalf("cumulative = %v, want %v", st.Cumulative, wantCum)
		}
	}

	if def := NewHistogram(nil); len(def.State().Bounds) != len(DefaultLatencyBuckets()) {
		t.Errorf("nil buckets: got %d bounds, want default %d",
			len(def.State().Bounds), len(DefaultLatencyBuckets()))
	}
}

func TestHistogramStateMerge(t *testing.T) {
	a := NewHistogram([]float64{0.1, 0.5, 1})
	b := NewHistogram([]float64{0.1, 0.5, 1})
	for i := 0; i < 40; i++ {
		a.Observe(0.05)
	}
	for i := 0; i < 60; i++ {
		b.Observe(0.3)
	}
	merged := a.State().Merge(b.State())
	if merged.Count != 100 {
		t.Fatalf("merged count = %d, want 100", merged.Count)
	}
	if got, want := merged.Sum, 40*0.05+60*0.3; math.Abs(got-want) > 1e-9 {
		t.Errorf("merged sum = %v, want %v", got, want)
	}
	// p50 falls in the (0.1, 0.5] bucket: rank 50, 40 below, 60 inside.
	if p50 := merged.Quantile(0.5); math.Abs(p50-(0.1+0.4*10/60)) > 1e-9 {
		t.Errorf("merged p50 = %v", p50)
	}

	// Empty states adopt the other side; layout mismatch keeps the receiver.
	var empty HistogramState
	if got := empty.Merge(a.State()); got.Count != 40 {
		t.Errorf("empty.Merge = count %d, want 40", got.Count)
	}
	if got := a.State().Merge(empty); got.Count != 40 {
		t.Errorf("Merge(empty) = count %d, want 40", got.Count)
	}
	odd := NewHistogram([]float64{1, 2}).State()
	if got := a.State().Merge(odd); got.Count != 40 {
		t.Errorf("mismatched Merge = count %d, want receiver's 40", got.Count)
	}
}

// TestHistogramConcurrentRecordMerge hammers standalone histograms from
// concurrent recorders (the loadgen worker shape) and checks the merged
// state is exact. Run under -race this also proves Observe/State are
// safe to interleave.
func TestHistogramConcurrentRecordMerge(t *testing.T) {
	const workers, perWorker = 8, 5000
	hists := make([]*Histogram, workers)
	for i := range hists {
		hists[i] = NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	}
	var wg sync.WaitGroup
	for i := range hists {
		wg.Add(1)
		go func(h *Histogram) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				h.Observe(float64(j%100) / 250.0) // 0..0.396
				if j%1000 == 0 {
					_ = h.State() // interleave snapshots with recording
				}
			}
		}(hists[i])
	}
	wg.Wait()
	var merged HistogramState
	for _, h := range hists {
		merged = merged.Merge(h.State())
	}
	if merged.Count != workers*perWorker {
		t.Fatalf("merged count = %d, want %d", merged.Count, workers*perWorker)
	}
	if last := merged.Cumulative[len(merged.Cumulative)-1]; last != merged.Count {
		t.Fatalf("+Inf cumulative %d != count %d", last, merged.Count)
	}
	if p999 := merged.Quantile(0.999); p999 <= 0 || p999 > 1 {
		t.Errorf("p999 = %v, want within (0, 1]", p999)
	}
}
