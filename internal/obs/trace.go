package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// StageHistogram is the registry family every finished span observes its
// duration into, labelled by stage (= span name). This is what makes
// "pipeline stage timings" appear at /metrics without extra plumbing.
const StageHistogram = "flare_stage_duration_seconds"

// Span is one timed region of the pipeline. Spans form a tree: a span
// started from a context that already carries a span becomes its child.
// All methods are nil-safe, so instrumented code needs no tracer checks —
// without a Tracer in the context, StartSpan returns a nil span and the
// instrumentation costs two pointer lookups.
type Span struct {
	tracer *Tracer
	parent *Span

	mu       sync.Mutex
	name     string
	start    time.Time
	duration time.Duration
	attrs    []Attr
	children []*Span
	ended    bool
}

// Attr is one span attribute, recorded in SetAttr order.
type Attr struct {
	Key   string      `json:"key"`
	Value interface{} `json:"value"`
}

// SetAttr records an attribute on the span (scenario count, cluster
// count, iterations, ...). Later values for the same key override.
func (s *Span) SetAttr(key string, value interface{}) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End finishes the span, observes its duration into the tracer's stage
// histogram, and — for root spans — records the tree on the tracer.
// End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.duration = time.Since(s.start)
	name, d := s.name, s.duration
	s.mu.Unlock()

	if s.tracer != nil {
		if reg := s.tracer.reg; reg != nil {
			reg.Histogram(StageHistogram,
				"duration of FLARE pipeline stages and server operations by span name",
				nil, "stage", name).Observe(d.Seconds())
		}
		if s.parent == nil {
			s.tracer.recordRoot(s)
		}
	}
}

// Duration returns the span's recorded duration (0 until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.duration
}

// Name returns the span name ("" for the nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// SpanSnapshot is the JSON form of a span tree.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationMs float64        `json:"duration_ms"`
	InFlight   bool           `json:"in_flight,omitempty"`
	Attrs      []Attr         `json:"attrs,omitempty"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot copies this span's tree (zero value for a nil span) — how a
// single request trace is rendered for durable export without touching
// the tracer's shared ring.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	return s.snapshot()
}

// snapshot copies the span tree under each node's lock.
func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	out := SpanSnapshot{
		Name:       s.name,
		Start:      s.start,
		DurationMs: float64(s.duration) / float64(time.Millisecond),
		InFlight:   !s.ended,
		Attrs:      append([]Attr(nil), s.attrs...),
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if out.InFlight {
		out.DurationMs = float64(time.Since(out.Start)) / float64(time.Millisecond)
	}
	for _, c := range children {
		out.Children = append(out.Children, c.snapshot())
	}
	return out
}

// DefaultTraceCapacity is how many root spans NewTracer retains.
const DefaultTraceCapacity = 32

// Tracer collects completed root spans into a fixed-capacity ring.
// Once the ring is full every new root evicts the oldest one; evictions
// are counted in flare_trace_dropped_total so operators can see when
// the live window is turning over faster than it is being read (the
// durable trace export, not this ring, is the history of record).
type Tracer struct {
	reg     *Registry
	dropped *Counter // nil when reg is nil

	mu   sync.Mutex
	ring []*Span // fixed ring storage, nil slots until first wrap
	head int     // index of the oldest retained root
	n    int     // retained count, <= len(ring)
}

// NewTracer returns a tracer observing stage durations into reg (which
// may be nil to record spans without histogram exposition). It retains
// the DefaultTraceCapacity most recent root spans.
func NewTracer(reg *Registry) *Tracer {
	return NewTracerCapacity(reg, DefaultTraceCapacity)
}

// NewTracerCapacity is NewTracer with an explicit root-span retention;
// capacity <= 0 falls back to DefaultTraceCapacity.
func NewTracerCapacity(reg *Registry, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	t := &Tracer{reg: reg, ring: make([]*Span, capacity)}
	if reg != nil {
		t.dropped = reg.Counter("flare_trace_dropped_total",
			"completed root spans evicted from the tracer's bounded ring")
	}
	return t
}

// Registry returns the registry stage durations are observed into.
func (t *Tracer) Registry() *Registry { return t.reg }

// Capacity returns the ring's fixed root-span retention.
func (t *Tracer) Capacity() int { return len(t.ring) }

func (t *Tracer) recordRoot(s *Span) {
	t.mu.Lock()
	if t.n < len(t.ring) {
		t.ring[(t.head+t.n)%len(t.ring)] = s
		t.n++
		t.mu.Unlock()
		return
	}
	t.ring[t.head] = s
	t.head = (t.head + 1) % len(t.ring)
	t.mu.Unlock()
	if t.dropped != nil {
		t.dropped.Inc()
	}
}

// Snapshot returns the retained root span trees, oldest first.
func (t *Tracer) Snapshot() []SpanSnapshot {
	t.mu.Lock()
	roots := make([]*Span, 0, t.n)
	for i := 0; i < t.n; i++ {
		roots = append(roots, t.ring[(t.head+i)%len(t.ring)])
	}
	t.mu.Unlock()
	out := make([]SpanSnapshot, 0, len(roots))
	for _, r := range roots {
		out = append(out, r.snapshot())
	}
	return out
}

// traceDump is the file format written by WriteJSON (flare -trace-out).
type traceDump struct {
	Roots []SpanSnapshot `json:"roots"`
}

// WriteJSON writes the retained root spans as an indented JSON document
// with a top-level "roots" array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traceDump{Roots: t.Snapshot()})
}

type tracerKey struct{}
type spanKey struct{}

// WithTracer returns a context carrying the tracer; spans started from it
// (and its descendants) are recorded there.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// StartSpan begins a span named name. If the context carries a span, the
// new span becomes its child; otherwise it is a root span on the
// context's tracer. Without a tracer the returned span is nil (and safe
// to use). The returned context carries the new span for further nesting.
//
//	ctx, span := obs.StartSpan(ctx, "analyze.kmeans")
//	defer span.End()
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	var tracer *Tracer
	if parent != nil {
		tracer = parent.tracer
	} else {
		tracer = TracerFrom(ctx)
		if tracer == nil {
			return ctx, nil
		}
	}
	s := &Span{tracer: tracer, parent: parent, name: name, start: time.Now()}
	if parent != nil {
		parent.addChild(s)
	}
	return context.WithValue(ctx, spanKey{}, s), s
}
