package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	ctx := WithTracer(context.Background(), tr)

	ctx, root := StartSpan(ctx, "pipeline")
	root.SetAttr("scenarios", 448)
	cctx, child := StartSpan(ctx, "analyze")
	_, grand := StartSpan(cctx, "analyze.kmeans")
	grand.SetAttr("k", 18)
	grand.End()
	child.End()
	_, sib := StartSpan(ctx, "evaluate")
	sib.End()
	root.End()

	roots := tr.Snapshot()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	r := roots[0]
	if r.Name != "pipeline" || r.InFlight {
		t.Errorf("root = %+v", r)
	}
	if len(r.Attrs) != 1 || r.Attrs[0].Key != "scenarios" {
		t.Errorf("root attrs = %+v", r.Attrs)
	}
	if len(r.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(r.Children))
	}
	if r.Children[0].Name != "analyze" || r.Children[1].Name != "evaluate" {
		t.Errorf("child names = %s, %s", r.Children[0].Name, r.Children[1].Name)
	}
	k := r.Children[0].Children
	if len(k) != 1 || k[0].Name != "analyze.kmeans" {
		t.Fatalf("grandchildren = %+v", k)
	}
	if k[0].Attrs[0].Key != "k" || k[0].Attrs[0].Value != 18 {
		t.Errorf("kmeans attrs = %+v", k[0].Attrs)
	}
}

func TestSpanEndObservesStageHistogram(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	ctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "profile")
	s.End()
	s.End() // idempotent: must not double-observe

	h := reg.Histogram(StageHistogram, "", nil, "stage", "profile")
	if h.Count() != 1 {
		t.Errorf("stage histogram count = %d, want 1", h.Count())
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `flare_stage_duration_seconds_count{stage="profile"} 1`) {
		t.Errorf("exposition missing stage series:\n%s", b.String())
	}
}

func TestNilSpanSafety(t *testing.T) {
	ctx, s := StartSpan(context.Background(), "untracked")
	if s != nil {
		t.Fatal("span without tracer should be nil")
	}
	s.SetAttr("k", 1)
	s.End()
	if d := s.Duration(); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}
	if n := s.Name(); n != "" {
		t.Errorf("nil span name = %q", n)
	}
	// Children of a nil span are also nil.
	_, c := StartSpan(ctx, "child")
	if c != nil {
		t.Error("child of untracked context should be nil")
	}
}

func TestTracerRetainsBoundedRoots(t *testing.T) {
	tr := NewTracer(nil)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 40; i++ {
		_, s := StartSpan(ctx, "r")
		s.End()
	}
	if got := len(tr.Snapshot()); got != 32 {
		t.Errorf("retained roots = %d, want 32", got)
	}
}

func TestTracerRingEvictsOldestAndCounts(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracerCapacity(reg, 4)
	if tr.Capacity() != 4 {
		t.Fatalf("capacity = %d, want 4", tr.Capacity())
	}
	ctx := WithTracer(context.Background(), tr)
	names := []string{"a", "b", "c", "d", "e", "f"}
	for _, n := range names {
		_, s := StartSpan(ctx, n)
		s.End()
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained = %d, want 4", len(snap))
	}
	// Oldest first: a and b were evicted.
	for i, want := range []string{"c", "d", "e", "f"} {
		if snap[i].Name != want {
			t.Errorf("snapshot[%d] = %q, want %q", i, snap[i].Name, want)
		}
	}
	dropped := reg.Counter("flare_trace_dropped_total", "").Value()
	if dropped != 2 {
		t.Errorf("flare_trace_dropped_total = %d, want 2", dropped)
	}
}

func TestTracerCapacityFallback(t *testing.T) {
	if got := NewTracerCapacity(nil, 0).Capacity(); got != DefaultTraceCapacity {
		t.Errorf("capacity(0) = %d, want %d", got, DefaultTraceCapacity)
	}
	if got := NewTracerCapacity(nil, -5).Capacity(); got != DefaultTraceCapacity {
		t.Errorf("capacity(-5) = %d, want %d", got, DefaultTraceCapacity)
	}
}

// TestConcurrentRootRecording wraps the ring with concurrent root spans
// and snapshots; run with -race. Retention must never exceed capacity
// and every completed root beyond it must be counted as dropped.
func TestConcurrentRootRecording(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracerCapacity(reg, 8)
	ctx := WithTracer(context.Background(), tr)
	const workers, iters = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_, s := StartSpan(ctx, "root")
				s.End()
				if n := len(tr.Snapshot()); n > 8 {
					t.Errorf("snapshot len %d exceeds capacity", n)
					return
				}
			}
		}()
	}
	wg.Wait()
	dropped := reg.Counter("flare_trace_dropped_total", "").Value()
	if want := uint64(workers*iters - 8); dropped != want {
		t.Errorf("dropped = %d, want %d", dropped, want)
	}
}

func TestSetAttrOverrides(t *testing.T) {
	tr := NewTracer(nil)
	ctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "x")
	s.SetAttr("k", 1)
	s.SetAttr("k", 2)
	s.End()
	attrs := tr.Snapshot()[0].Attrs
	if len(attrs) != 1 || attrs[0].Value != 2 {
		t.Errorf("attrs = %+v", attrs)
	}
}

func TestWriteJSON(t *testing.T) {
	tr := NewTracer(nil)
	ctx := WithTracer(context.Background(), tr)
	sctx, s := StartSpan(ctx, "root")
	_, c := StartSpan(sctx, "child")
	c.End()
	s.End()
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"roots"`, `"name": "root"`, `"name": "child"`, `"duration_ms"`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("trace JSON missing %q:\n%s", want, b.String())
		}
	}
}

// TestConcurrentSpans starts sibling spans from many goroutines under one
// root while snapshots run; run with -race.
func TestConcurrentSpans(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	ctx := WithTracer(context.Background(), tr)
	rctx, root := StartSpan(ctx, "root")

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, s := StartSpan(rctx, "worker")
				s.SetAttr("i", i)
				_ = tr.Snapshot()
				s.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()

	snap := tr.Snapshot()
	if len(snap) != 1 || len(snap[0].Children) != 8*50 {
		t.Fatalf("root children = %d, want 400", len(snap[0].Children))
	}
}
