package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalisation(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d, want 5", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 100} {
		const n = 57
		var hits [n]atomic.Int32
		For(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	ran := false
	For(4, 0, func(int) { ran = true })
	For(4, -1, func(int) { ran = true })
	if ran {
		t.Error("For ran work for n <= 0")
	}
}

func TestForSequentialWhenSingleWorker(t *testing.T) {
	// workers <= 1 must preserve index order (plain loop), which callers
	// rely on for deterministic error selection.
	var order []int
	For(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
}
