// Package parallel provides the one concurrency primitive FLARE's
// analysis kernels share: a bounded, deterministic fan-out over an
// indexed work list.
//
// Determinism contract: For hands each index to exactly one worker and
// every call site is responsible for making the work of index i
// independent of scheduling order (per-index derived RNG substreams,
// per-index output slots, no shared accumulators). Under that contract
// the results are byte-identical for any worker count, which is what
// lets the Analyzer promise identical output for Workers=1 and
// Workers=GOMAXPROCS (see DESIGN.md "Parallelism & determinism").
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalises a worker-count option: values <= 0 mean
// GOMAXPROCS, everything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(i) for every i in [0, n) on at most workers goroutines.
// Indices are claimed dynamically (an atomic counter), so uneven work
// per index self-balances; workers <= 1 (or n <= 1) degrades to a plain
// sequential loop with no goroutines and no allocation. fn must write
// its result to an i-indexed slot rather than a shared accumulator —
// see the package comment for the determinism contract.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
