package experiments

import (
	"sort"

	"flare/internal/report"
	"flare/internal/stats"
	"flare/internal/workload"
)

// Figure2 reproduces the Sec 3.1 pitfall: the per-HP-job MIPS reduction
// of Feature 1 (cache sizing) as estimated by conventional load-testing
// benchmarks versus observed in the datacenter.
func Figure2(env *Env) (*report.Table, error) {
	feat := env.Features[0] // Feature 1: cache sizing
	t := report.NewTable(
		"Figure 2: load-testing vs datacenter MIPS reduction (%), Feature 1",
		"job", "load-testing", "datacenter", "datacenter-std", "abs-deviation",
	)
	var worst float64
	for _, p := range env.Jobs.HPJobs() {
		lt, err := env.Eval.LoadTesting(feat, p.Name)
		if err != nil {
			return nil, err
		}
		truth, std, err := env.Eval.PerJobTruth(feat, p.Name)
		if err != nil {
			return nil, err
		}
		dev := abs(lt - truth)
		if dev > worst {
			worst = dev
		}
		t.MustAddRow(p.Name, report.F(lt, 2), report.F(truth, 2), report.F(std, 2), report.F(dev, 2))
	}
	t.AddNote("worst-case deviation %.2f points: colocation-unaware load testing misestimates in-datacenter impact", worst)
	return t, nil
}

// Figure3a reproduces the machine-occupancy characteristics: every
// scenario's HP/LP instance mix and total occupancy, sorted by occupancy
// (the step-like pattern comes from fixed 4-vCPU containers).
func Figure3a(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Figure 3a: machine occupancy by scenario (sorted)",
		"rank", "scenario", "hp-instances", "lp-instances", "vcpus", "occupancy",
	)
	set := env.Scenarios()
	capVCPUs := env.Machine.VCPUs()
	for rank, id := range set.SortedByOccupancy() {
		sc, err := set.Get(id)
		if err != nil {
			return nil, err
		}
		hp, lp := sc.CountByClass(env.Jobs)
		t.MustAddRow(
			report.I(rank),
			report.I(id),
			report.I(hp),
			report.I(lp),
			report.I(sc.VCPUs()),
			report.F(sc.Occupancy(capVCPUs), 3),
		)
	}
	t.AddNote("%d distinct job-colocation scenarios (paper: 895)", set.Len())
	return t, nil
}

// Figure3b reproduces the impact-vs-MPKI scatter: Feature 1's per-scenario
// MIPS reduction against the scenario's HP-job LLC MPKI, sorted by impact,
// with the (weak) correlation the paper highlights.
func Figure3b(env *Env) (*report.Table, error) {
	feat := env.Features[0]
	full, err := env.Eval.FullDatacenter(feat)
	if err != nil {
		return nil, err
	}
	mpkiCol, err := env.Dataset.MetricColumn("LLC-MPKI-HP")
	if err != nil {
		return nil, err
	}

	type pair struct {
		id     int
		impact float64
		mpki   float64
	}
	pairs := make([]pair, len(full.Impacts))
	impacts := make([]float64, len(full.Impacts))
	for id, imp := range full.Impacts {
		pairs[id] = pair{id: id, impact: imp.ReductionPct, mpki: mpkiCol[id]}
		impacts[id] = imp.ReductionPct
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].impact < pairs[b].impact })

	t := report.NewTable(
		"Figure 3b: Feature 1 impact vs HP-job MPKI per scenario (sorted by impact)",
		"rank", "scenario", "mips-reduction-pct", "hp-llc-mpki",
	)
	for rank, p := range pairs {
		t.MustAddRow(report.I(rank), report.I(p.id), report.F(p.impact, 3), report.F(p.mpki, 3))
	}
	corr := stats.Correlation(impacts, mpkiCol)
	t.AddNote("correlation(impact, HP MPKI) = %.3f: no single metric predicts the impact (paper Sec 3.2)", corr)
	return t, nil
}

// Figure3bCorrelation returns just the impact-MPKI correlation, for
// assertions and benchmarks.
func Figure3bCorrelation(env *Env) (float64, error) {
	feat := env.Features[0]
	full, err := env.Eval.FullDatacenter(feat)
	if err != nil {
		return 0, err
	}
	mpkiCol, err := env.Dataset.MetricColumn("LLC-MPKI-HP")
	if err != nil {
		return 0, err
	}
	impacts := make([]float64, len(full.Impacts))
	for id, imp := range full.Impacts {
		impacts[id] = imp.ReductionPct
	}
	return stats.Correlation(impacts, mpkiCol), nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// jobNames returns the HP job names in catalog order.
func jobNames(cat *workload.Catalog) []string {
	hp := cat.HPJobs()
	out := make([]string, len(hp))
	for i, p := range hp {
		out[i] = p.Name
	}
	return out
}
