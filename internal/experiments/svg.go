package experiments

import (
	"fmt"

	"flare/internal/svgplot"
)

// SVG figure generators: graphical renderings of the key paper figures,
// written by flare-experiments next to the tables. They reuse the cached
// evaluator state, so rendering after the table pass is cheap.

// Figure2SVG renders the load-testing pitfall as grouped bars.
func Figure2SVG(env *Env) (string, error) {
	feat := env.Features[0]
	labels := jobNames(env.Jobs)
	lt := svgplot.Series{Name: "load-testing"}
	dc := svgplot.Series{Name: "datacenter"}
	for _, job := range labels {
		v, err := env.Eval.LoadTesting(feat, job)
		if err != nil {
			return "", err
		}
		truth, _, err := env.Eval.PerJobTruth(feat, job)
		if err != nil {
			return "", err
		}
		lt.Values = append(lt.Values, v)
		dc.Values = append(dc.Values, truth)
	}
	return svgplot.BarChart("Figure 2: MIPS reduction (%), Feature 1", labels, []svgplot.Series{lt, dc})
}

// Figure3aSVG renders the sorted machine-occupancy curve (the step-like
// pattern of fixed-size containers).
func Figure3aSVG(env *Env) (string, error) {
	set := env.Scenarios()
	capVCPUs := env.Machine.VCPUs()
	ids := set.SortedByOccupancy()
	var labels []string
	occ := svgplot.Series{Name: "occupancy"}
	for rank, id := range ids {
		sc, err := set.Get(id)
		if err != nil {
			return "", err
		}
		labels = append(labels, fmt.Sprintf("%d", rank))
		occ.Values = append(occ.Values, sc.Occupancy(capVCPUs))
	}
	return svgplot.LineChart("Figure 3a: machine occupancy by scenario (sorted)", labels, []svgplot.Series{occ})
}

// Figure7SVG renders the explained-variance curves.
func Figure7SVG(env *Env) (string, error) {
	mod := env.Analysis.PCA
	limit := mod.NumPC + 10
	if limit > len(mod.Explained) {
		limit = len(mod.Explained)
	}
	var labels []string
	per := svgplot.Series{Name: "per-PC"}
	cum := svgplot.Series{Name: "cumulative"}
	cumVals := mod.CumulativeExplained()
	for k := 0; k < limit; k++ {
		labels = append(labels, fmt.Sprintf("%d", k))
		per.Values = append(per.Values, mod.Explained[k])
		cum.Values = append(cum.Values, cumVals[k])
	}
	return svgplot.LineChart("Figure 7: explained variance per PC", labels, []svgplot.Series{per, cum})
}

// Figure9SVG renders the cluster sweep: SSE (normalised to its own max)
// and silhouette on a shared [0,1]-ish scale.
func Figure9SVG(env *Env) (string, error) {
	sweep := env.Analysis.Sweep
	if sweep == nil {
		var err error
		sweep, err = kmeansSweep(env)
		if err != nil {
			return "", err
		}
	}
	var labels []string
	sse := svgplot.Series{Name: "SSE (normalised)"}
	sil := svgplot.Series{Name: "silhouette"}
	var maxSSE float64
	for _, p := range sweep {
		if p.SSE > maxSSE {
			maxSSE = p.SSE
		}
	}
	for _, p := range sweep {
		labels = append(labels, fmt.Sprintf("%d", p.K))
		sse.Values = append(sse.Values, p.SSE/maxSSE)
		sil.Values = append(sil.Values, p.Silhouette)
	}
	return svgplot.LineChart("Figure 9: SSE and silhouette vs cluster count", labels, []svgplot.Series{sse, sil})
}

// Figure10SVG renders the cluster-centre radar.
func Figure10SVG(env *Env) (string, error) {
	numPC := env.Analysis.PCA.NumPC
	axes := make([]string, numPC)
	for pc := range axes {
		axes[pc] = fmt.Sprintf("pc%d", pc)
	}
	var rows []svgplot.Series
	for c := 0; c < env.Analysis.Clustering.K; c++ {
		centre, err := env.Analysis.ClusterCenterPCs(c)
		if err != nil {
			return "", err
		}
		rows = append(rows, svgplot.Series{Name: fmt.Sprintf("cluster%d", c), Values: centre})
	}
	return svgplot.Radar("Figure 10: cluster centres in PC space", axes, rows)
}

// Figure12aSVG renders the all-job accuracy comparison as grouped bars.
func Figure12aSVG(env *Env) (string, error) {
	var labels []string
	truth := svgplot.Series{Name: "datacenter"}
	sampling := svgplot.Series{Name: "sampling p97.5"}
	flare := svgplot.Series{Name: "flare"}
	for _, feat := range env.Features {
		full, err := env.Eval.FullDatacenter(feat)
		if err != nil {
			return "", err
		}
		est, err := env.FLAREEstimate(feat)
		if err != nil {
			return "", err
		}
		samp, err := env.Eval.Sample(feat, est.ScenariosReplayed, samplingTrials, env.Opts.Seed)
		if err != nil {
			return "", err
		}
		hi, err := samp.Quantile(0.975)
		if err != nil {
			return "", err
		}
		labels = append(labels, feat.Name)
		truth.Values = append(truth.Values, full.MeanReductionPct)
		sampling.Values = append(sampling.Values, hi)
		flare.Values = append(flare.Values, est.ReductionPct)
	}
	return svgplot.BarChart("Figure 12a: all-job MIPS reduction (%)", labels,
		[]svgplot.Series{truth, sampling, flare})
}

// Figure13SVG renders the cost/accuracy tradeoff: one sampling curve per
// feature plus a flat line at FLARE's observed error.
func Figure13SVG(env *Env) (string, error) {
	n := env.Scenarios().Len()
	sizes := []int{18, 36, 90, 180, 360}
	if n < 360 {
		sizes = []int{n / 48, n / 24, n / 10, n / 5, n / 2}
		for i := range sizes {
			if sizes[i] < 2 {
				sizes[i] = 2
			}
		}
	}
	var labels []string
	for _, s := range sizes {
		labels = append(labels, fmt.Sprintf("%d", s))
	}
	var series []svgplot.Series
	for _, feat := range env.Features {
		curve, err := env.Eval.SamplingErrorCurve(feat, sizes, 0.95)
		if err != nil {
			return "", err
		}
		s := svgplot.Series{Name: "sampling " + feat.Name}
		for _, p := range curve {
			s.Values = append(s.Values, p.ExpectedError)
		}
		series = append(series, s)

		full, err := env.Eval.FullDatacenter(feat)
		if err != nil {
			return "", err
		}
		est, err := env.FLAREEstimate(feat)
		if err != nil {
			return "", err
		}
		flat := svgplot.Series{Name: "flare " + feat.Name}
		for range sizes {
			flat.Values = append(flat.Values, abs(est.ReductionPct-full.MeanReductionPct))
		}
		series = append(series, flat)
	}
	return svgplot.LineChart("Figure 13: cost (scenarios) vs expected max error", labels, series)
}
