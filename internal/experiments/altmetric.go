package experiments

import (
	"flare/internal/perfscore"
	"flare/internal/report"
)

// ExtensionAlternativeMetrics demonstrates that FLARE is not bound to the
// paper's throughput metric (Sec 5.1): the same representatives estimate
// a feature's impact under the harmonic-mean (fairness-balanced) and
// worst-case (tail-oriented) aggregations of normalised performance, and
// the estimates still track the corresponding ground truths.
func ExtensionAlternativeMetrics(env *Env) (*report.Table, error) {
	feat := env.Features[0] // Feature 1: cache sizing
	metrics := []perfscore.Metric{
		perfscore.MetricSumNormalized,
		perfscore.MetricHarmonicMean,
		perfscore.MetricWorstCase,
	}

	t := report.NewTable(
		"Extension: alternative performance metrics (Feature 1)",
		"metric", "truth", "flare", "abs-err",
	)
	set := env.Scenarios()
	for _, metric := range metrics {
		opts := perfscore.Options{Metric: metric}

		// Ground truth under this metric.
		var truthSum float64
		for id := 0; id < set.Len(); id++ {
			sc, err := set.Get(id)
			if err != nil {
				return nil, err
			}
			imp, err := perfscore.EvaluateScenario(env.Machine, feat, sc, env.Jobs, env.Inherent, opts)
			if err != nil {
				return nil, err
			}
			truthSum += imp.ReductionPct
		}
		truth := truthSum / float64(set.Len())

		// FLARE estimate under this metric.
		var est, weightSum float64
		for _, rep := range env.Analysis.Representatives {
			sc, err := set.Get(rep.ScenarioID)
			if err != nil {
				return nil, err
			}
			imp, err := perfscore.EvaluateScenario(env.Machine, feat, sc, env.Jobs, env.Inherent, opts)
			if err != nil {
				return nil, err
			}
			est += rep.Weight * imp.ReductionPct
			weightSum += rep.Weight
		}
		est /= weightSum

		t.MustAddRow(metric.String(), report.F(truth, 2), report.F(est, 2), report.F(abs(est-truth), 2))
	}
	t.AddNote("the representatives were derived metric-agnostically, yet estimate all three aggregations")
	return t, nil
}
