package experiments

import (
	"flare/internal/analyzer"
	"flare/internal/replayer"
	"flare/internal/report"
	"flare/internal/workload"
)

// ExtensionPerJobMetrics evaluates the paper's Sec 5.3 suggestion: adding
// per-job metrics to the clustering features sharpens that job's
// estimates, at the risk of inflating the feature space. The table
// compares, per feature, the target job's per-job estimation error and
// the all-job error with and without the augmentation. The target is GA
// (Graph Analytics), the most cache-sensitive HP service.
func ExtensionPerJobMetrics(env *Env) (*report.Table, error) {
	const job = workload.GraphAnalytics

	t := report.NewTable(
		"Extension: per-job metrics in clustering (target: GA)",
		"pipeline", "feature", "ga-abs-err", "alljob-abs-err",
	)
	addRows := func(label string, an *analyzer.Analysis) error {
		for _, feat := range env.Features {
			truth, _, err := env.Eval.PerJobTruth(feat, job)
			if err != nil {
				return err
			}
			full, err := env.Eval.FullDatacenter(feat)
			if err != nil {
				return err
			}
			ropts := replayer.DefaultOptions()
			ropts.Seed = env.Opts.Seed
			jest, err := replayer.EstimatePerJob(an, env.Jobs, env.Inherent, env.Machine, feat, job, ropts)
			if err != nil {
				return err
			}
			est, err := replayer.EstimateAllJob(an, env.Jobs, env.Inherent, env.Machine, feat, ropts)
			if err != nil {
				return err
			}
			t.MustAddRow(label, feat.Name,
				report.F(abs(jest.ReductionPct-truth), 3),
				report.F(abs(est.ReductionPct-full.MeanReductionPct), 3),
			)
		}
		return nil
	}

	if err := addRows("general-metrics", env.Analysis); err != nil {
		return nil, err
	}
	opts := env.baseAnalyzerOptions()
	opts.PerJobMetrics = []string{job}
	augmented, err := analyzer.Analyze(env.Dataset, opts)
	if err != nil {
		return nil, err
	}
	if err := addRows("with-ga-metrics", augmented); err != nil {
		return nil, err
	}
	t.AddNote("the paper recommends per-job metrics only when a specific job's accuracy matters (Sec 5.3)")
	return t, nil
}
