package experiments

import (
	"fmt"
	"math/rand"

	"flare/internal/analyzer"
	"flare/internal/mathx"
	"flare/internal/perfscore"
	"flare/internal/replayer"
	"flare/internal/report"
)

// Ablation studies for the design choices DESIGN.md calls out. Each
// returns a table comparing FLARE's all-job estimation error under the
// modified design against ground truth, for Feature 1 (cache sizing) —
// the feature with the widest per-scenario spread, hence the most
// sensitive to representative quality.

// ablationFeature picks the feature ablations are scored on.
func (env *Env) ablationFeature() int { return 0 }

// flareErrorWith re-analyzes the dataset with the given options and
// returns FLARE's absolute all-job error against ground truth.
func (env *Env) flareErrorWith(opts analyzer.Options) (absErr float64, reps int, err error) {
	an, err := analyzer.Analyze(env.Dataset, opts)
	if err != nil {
		return 0, 0, err
	}
	feat := env.Features[env.ablationFeature()]
	ropts := replayer.DefaultOptions()
	ropts.Seed = env.Opts.Seed
	est, err := replayer.EstimateAllJob(an, env.Jobs, env.Inherent, env.Machine, feat, ropts)
	if err != nil {
		return 0, 0, err
	}
	full, err := env.Eval.FullDatacenter(feat)
	if err != nil {
		return 0, 0, err
	}
	return abs(est.ReductionPct - full.MeanReductionPct), len(an.Representatives), nil
}

func (env *Env) baseAnalyzerOptions() analyzer.Options {
	opts := analyzer.DefaultOptions()
	opts.Seed = env.Opts.Seed
	opts.Clusters = env.Analysis.Clustering.K
	return opts
}

// AblationClusterCount measures estimation error as the cluster count
// varies around the paper's 18.
func AblationClusterCount(env *Env, ks []int) (*report.Table, error) {
	t := report.NewTable(
		"Ablation: cluster count vs estimation error (Feature 1)",
		"clusters", "flare-abs-err",
	)
	for _, k := range ks {
		opts := env.baseAnalyzerOptions()
		opts.Clusters = k
		absErr, reps, err := env.flareErrorWith(opts)
		if err != nil {
			return nil, err
		}
		t.MustAddRow(report.I(reps), report.F(absErr, 3))
	}
	t.AddNote("cost grows linearly with clusters; accuracy saturates (paper Sec 5.4)")
	return t, nil
}

// AblationPCCount measures estimation error as the PCA variance target
// (and hence PC count) varies around the paper's 95%.
func AblationPCCount(env *Env, targets []float64) (*report.Table, error) {
	t := report.NewTable(
		"Ablation: PCA variance target vs estimation error (Feature 1)",
		"variance-target", "flare-abs-err",
	)
	for _, vt := range targets {
		opts := env.baseAnalyzerOptions()
		opts.VarianceTarget = vt
		absErr, _, err := env.flareErrorWith(opts)
		if err != nil {
			return nil, err
		}
		t.MustAddRow(report.F(vt, 2), report.F(absErr, 3))
	}
	return t, nil
}

// AblationWhitening compares estimation error with and without whitening
// the PC scores before clustering.
func AblationWhitening(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Ablation: whitening before clustering (Feature 1)",
		"whitening", "flare-abs-err",
	)
	for _, skip := range []bool{false, true} {
		opts := env.baseAnalyzerOptions()
		opts.SkipWhiten = skip
		absErr, _, err := env.flareErrorWith(opts)
		if err != nil {
			return nil, err
		}
		t.MustAddRow(boolMark(!skip), report.F(absErr, 3))
	}
	return t, nil
}

// AblationRefinement compares estimation error with and without the
// correlation-pruning refinement step.
func AblationRefinement(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Ablation: metric refinement (Feature 1)",
		"refinement", "metrics-used", "flare-abs-err",
	)
	for _, skip := range []bool{false, true} {
		opts := env.baseAnalyzerOptions()
		opts.SkipRefine = skip
		an, err := analyzer.Analyze(env.Dataset, opts)
		if err != nil {
			return nil, err
		}
		absErr, _, err := env.flareErrorWith(opts)
		if err != nil {
			return nil, err
		}
		t.MustAddRow(boolMark(!skip), report.I(len(an.RefinedNames)), report.F(absErr, 3))
	}
	return t, nil
}

// AblationRepresentativeSelection compares three ways to pick a cluster's
// stand-in scenario: nearest-to-centroid (FLARE), medoid (minimum total
// intra-cluster distance), and uniform random.
func AblationRepresentativeSelection(env *Env) (*report.Table, error) {
	feat := env.Features[env.ablationFeature()]
	full, err := env.Eval.FullDatacenter(feat)
	if err != nil {
		return nil, err
	}

	selectAndScore := func(pick func(rep analyzer.Representative) int) (float64, error) {
		var estimate, weightSum float64
		for _, rep := range env.Analysis.Representatives {
			id := pick(rep)
			sc, err := env.Scenarios().Get(id)
			if err != nil {
				return 0, err
			}
			imp, err := perfscore.EvaluateScenario(env.Machine, feat, sc, env.Jobs, env.Inherent, perfscore.Options{})
			if err != nil {
				return 0, err
			}
			estimate += rep.Weight * imp.ReductionPct
			weightSum += rep.Weight
		}
		return abs(estimate/weightSum - full.MeanReductionPct), nil
	}

	t := report.NewTable(
		"Ablation: representative selection strategy (Feature 1)",
		"strategy", "flare-abs-err",
	)

	nearest, err := selectAndScore(func(rep analyzer.Representative) int { return rep.ScenarioID })
	if err != nil {
		return nil, err
	}
	t.MustAddRow("nearest-to-centroid", report.F(nearest, 3))

	medoid, err := selectAndScore(func(rep analyzer.Representative) int { return env.medoidOf(rep) })
	if err != nil {
		return nil, err
	}
	t.MustAddRow("medoid", report.F(medoid, 3))

	// Random selection: average error over several draws.
	rng := rand.New(rand.NewSource(env.Opts.Seed))
	var randSum float64
	const draws = 10
	for d := 0; d < draws; d++ {
		e, err := selectAndScore(func(rep analyzer.Representative) int {
			return rep.Ranked[rng.Intn(len(rep.Ranked))]
		})
		if err != nil {
			return nil, err
		}
		randSum += e
	}
	t.MustAddRow(fmt.Sprintf("random-in-cluster (mean of %d)", draws), report.F(randSum/draws, 3))
	return t, nil
}

// medoidOf returns the cluster member minimising total distance to the
// other members in score space.
func (env *Env) medoidOf(rep analyzer.Representative) int {
	best, bestSum := rep.ScenarioID, -1.0
	for _, a := range rep.Ranked {
		pa := mathx.Vector(env.Analysis.Scores.Row(a))
		var sum float64
		for _, b := range rep.Ranked {
			if a == b {
				continue
			}
			sum += pa.Distance(env.Analysis.Scores.Row(b))
		}
		if bestSum < 0 || sum < bestSum {
			best, bestSum = a, sum
		}
	}
	return best
}

// AblationWeighting compares cluster-size weighting against an unweighted
// mean of the representatives' impacts.
func AblationWeighting(env *Env) (*report.Table, error) {
	feat := env.Features[env.ablationFeature()]
	full, err := env.Eval.FullDatacenter(feat)
	if err != nil {
		return nil, err
	}
	est, err := env.FLAREEstimate(feat)
	if err != nil {
		return nil, err
	}

	var unweighted float64
	for _, ci := range est.PerCluster {
		unweighted += ci.ReductionPct
	}
	unweighted /= float64(len(est.PerCluster))

	t := report.NewTable(
		"Ablation: cluster-size weighting (Feature 1)",
		"aggregation", "estimate", "abs-err",
	)
	t.MustAddRow("weighted-by-cluster-size", report.F(est.ReductionPct, 3),
		report.F(abs(est.ReductionPct-full.MeanReductionPct), 3))
	t.MustAddRow("unweighted-mean", report.F(unweighted, 3),
		report.F(abs(unweighted-full.MeanReductionPct), 3))
	return t, nil
}

// AblationClusteringMethod compares the paper's k-means against the
// hierarchical (Ward) alternative it mentions, on clustering quality and
// estimation error.
func AblationClusteringMethod(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Ablation: clustering method (Feature 1)",
		"method", "sse", "flare-abs-err",
	)
	for _, method := range []analyzer.Method{analyzer.MethodKMeans, analyzer.MethodHierarchical} {
		opts := env.baseAnalyzerOptions()
		opts.Method = method
		an, err := analyzer.Analyze(env.Dataset, opts)
		if err != nil {
			return nil, err
		}
		absErr, _, err := env.flareErrorWith(opts)
		if err != nil {
			return nil, err
		}
		t.MustAddRow(method.String(), report.F(an.Clustering.SSE, 1), report.F(absErr, 3))
	}
	t.AddNote("the paper uses k-means and notes hierarchical clustering as a valid alternative (Sec 4.4)")
	return t, nil
}
