package experiments

import (
	"flare/internal/analyzer"
	"flare/internal/metrics"
	"flare/internal/profiler"
	"flare/internal/replayer"
	"flare/internal/report"
)

// ExtensionTemporalMetrics evaluates the paper's Sec 4.1 suggestion of
// enriching scenarios with temporal information: the profiler re-collects
// the same population with per-sample load phases enabled and ±stddev
// twins of the key metrics, and the pipeline re-runs on the enriched
// matrix. The table compares metric count, selected PCs, and FLARE's
// estimation error per feature against the plain (means-only) pipeline.
func ExtensionTemporalMetrics(env *Env) (*report.Table, error) {
	cat, err := metrics.WithVariability(env.Metrics)
	if err != nil {
		return nil, err
	}
	profOpts := profiler.DefaultOptions()
	profOpts.Seed = env.Opts.Seed
	profOpts.SamplesPerScenario = 12 // enough windows to estimate a stddev
	profOpts.PhaseStd = 0.4
	ds, err := profiler.Collect(env.Machine, env.Scenarios(), env.Jobs, cat, profOpts)
	if err != nil {
		return nil, err
	}
	anOpts := analyzer.DefaultOptions()
	anOpts.Seed = env.Opts.Seed
	anOpts.Clusters = env.Analysis.Clustering.K
	an, err := analyzer.Analyze(ds, anOpts)
	if err != nil {
		return nil, err
	}

	t := report.NewTable(
		"Extension: temporal/phase metrics (paper Sec 4.1)",
		"pipeline", "raw-metrics", "refined", "pcs", "feature", "flare-abs-err",
	)
	addRows := func(label string, a *analyzer.Analysis, rawCount int) error {
		for _, feat := range env.Features {
			full, err := env.Eval.FullDatacenter(feat)
			if err != nil {
				return err
			}
			ropts := replayer.DefaultOptions()
			ropts.Seed = env.Opts.Seed
			est, err := replayer.EstimateAllJob(a, env.Jobs, env.Inherent, env.Machine, feat, ropts)
			if err != nil {
				return err
			}
			t.MustAddRow(label,
				report.I(rawCount),
				report.I(len(a.RefinedNames)),
				report.I(a.PCA.NumPC),
				feat.Name,
				report.F(abs(est.ReductionPct-full.MeanReductionPct), 3),
			)
		}
		return nil
	}
	if err := addRows("means-only", env.Analysis, env.Metrics.Len()); err != nil {
		return nil, err
	}
	if err := addRows("with-temporal", an, cat.Len()); err != nil {
		return nil, err
	}
	t.AddNote("temporal stddev metrics add quasi-independent dimensions; the pipeline absorbs them unchanged")
	return t, nil
}
