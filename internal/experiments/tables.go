package experiments

import (
	"fmt"

	"flare/internal/machine"
	"flare/internal/report"
)

// Table2 reproduces the datacenter machine specification table.
func Table2(*Env) (*report.Table, error) {
	return shapeTable("Table 2: datacenter machine specifications", machine.DefaultShape()), nil
}

// Table5 reproduces the two-shape configuration table of the
// heterogeneous study.
func Table5(*Env) (*report.Table, error) {
	t := report.NewTable(
		"Table 5: two datacenter configurations",
		"resource", "default", "small",
	)
	d, s := machine.DefaultShape(), machine.SmallShape()
	t.MustAddRow("cpu", d.CPUModel, s.CPUModel)
	t.MustAddRow("sockets x vcpus",
		fmt.Sprintf("%d x %d", d.Sockets, d.CoresPerSocket*d.ThreadsPerCore),
		fmt.Sprintf("%d x %d", s.Sockets, s.CoresPerSocket*s.ThreadsPerCore))
	t.MustAddRow("dram-gb", report.F(d.DRAMGB, 0), report.F(s.DRAMGB, 0))
	t.MustAddRow("llc-mb-per-socket", report.F(d.LLCMBPerSocket, 0), report.F(s.LLCMBPerSocket, 0))
	t.MustAddRow("mem-bw-gbps", report.F(d.MemBWGBps, 0), report.F(s.MemBWGBps, 0))
	t.MustAddRow("max-freq-ghz", report.F(d.MaxFreqGHz, 1), report.F(s.MaxFreqGHz, 1))
	t.MustAddRow("network-gbps", report.F(d.NetworkGbps, 0), report.F(s.NetworkGbps, 0))
	return t, nil
}

func shapeTable(title string, s machine.Shape) *report.Table {
	t := report.NewTable(title, "resource", "value")
	t.MustAddRow("cpu", s.CPUModel)
	t.MustAddRow("sockets", report.I(s.Sockets))
	t.MustAddRow("vcpus-per-socket", report.I(s.CoresPerSocket*s.ThreadsPerCore))
	t.MustAddRow("dram-gb", report.F(s.DRAMGB, 0))
	t.MustAddRow("llc-mb-per-socket", report.F(s.LLCMBPerSocket, 0))
	t.MustAddRow("freq-range-ghz", fmt.Sprintf("%.1f - %.1f", s.BaseFreqGHz, s.MaxFreqGHz))
	t.MustAddRow("network-gbps", report.F(s.NetworkGbps, 0))
	t.MustAddRow("disk-mbps", report.F(s.DiskMBps, 0))
	return t
}

// Table3 reproduces the job-configuration catalog.
func Table3(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Table 3: configurations of datacenter job instances",
		"job", "class", "description", "memory-gb", "working-set-mb", "inherent-mips",
	)
	for _, p := range env.Jobs.Profiles() {
		inh, err := env.Inherent.MIPS(p.Name)
		if err != nil {
			return nil, err
		}
		t.MustAddRow(p.Name, p.Class.String(), p.Long,
			report.F(p.MemoryGB, 0), report.F(p.WorkingSetMB, 0), report.F(inh, 0))
	}
	t.AddNote("every instance is a %d-vCPU container; inherent MIPS measured alone on the default machine", 4)
	return t, nil
}

// Table4 reproduces the feature summary.
func Table4(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Table 4: datacenter-improving features under evaluation",
		"setup", "llc-mb", "max-freq-ghz", "smt",
	)
	base := env.Machine
	t.MustAddRow("baseline", report.F(base.LLCMB, 0), report.F(base.MaxFreqGHz, 1), boolMark(base.SMTEnabled))
	for _, feat := range env.Features {
		cfg := feat.Apply(base)
		t.MustAddRow(feat.Name, report.F(cfg.LLCMB, 0), report.F(cfg.MaxFreqGHz, 1), boolMark(cfg.SMTEnabled))
	}
	return t, nil
}
