package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"flare/internal/kmeans"
	"flare/internal/pca"
	"flare/internal/report"
)

// Figure6 reproduces the raw metric catalog overview: the collected
// metrics with their level, source, and unit (the paper's Fig 6 subset
// listing), plus how many survived refinement.
func Figure6(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Figure 6: collected performance and resource metrics",
		"metric", "level", "source", "unit", "kept-after-refinement",
	)
	kept := make(map[string]bool, len(env.Analysis.RefinedNames))
	for _, n := range env.Analysis.RefinedNames {
		kept[n] = true
	}
	for _, d := range env.Metrics.Defs() {
		t.MustAddRow(d.Name, d.Level.String(), d.Source.String(), d.Unit, boolMark(kept[d.Name]))
	}
	t.AddNote("%d raw metrics collected; refinement kept %d (paper: 100+ -> 85)",
		env.Metrics.Len(), len(env.Analysis.RefinedNames))
	return t, nil
}

// Figure7 reproduces the PC-count selection curve: per-component explained
// variance and the cumulative curve with the 95% cut (paper: 18 PCs).
func Figure7(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Figure 7: explained variance per principal component",
		"pc", "explained", "cumulative", "selected",
	)
	mod := env.Analysis.PCA
	cum := mod.CumulativeExplained()
	limit := mod.NumPC + 10
	if limit > len(cum) {
		limit = len(cum)
	}
	for k := 0; k < limit; k++ {
		t.MustAddRow(
			report.I(k),
			report.F(mod.Explained[k], 4),
			report.F(cum[k], 4),
			boolMark(k < mod.NumPC),
		)
	}
	t.AddNote("selected %d PCs to explain >= 95%% of variance (paper: 18)", mod.NumPC)
	return t, nil
}

// Figure8 reproduces the PC interpretation table: each selected PC's
// strongest positive and negative raw-metric contributors and the
// synthesised high-level meaning.
func Figure8(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Figure 8: high-level metrics (principal components) and interpretations",
		"pc", "explained", "interpretation", "top-positive", "top-negative",
	)
	for _, lbl := range env.Analysis.Labels {
		t.MustAddRow(
			report.I(lbl.Index),
			report.F(lbl.Explained, 3),
			lbl.Interpretation,
			contribString(lbl.TopPositive, 3),
			contribString(lbl.TopNegative, 3),
		)
	}
	return t, nil
}

// Figure9 reproduces the cluster-count investigation: SSE and silhouette
// score for each candidate k, with the knee selection.
func Figure9(env *Env) (*report.Table, error) {
	sweep := env.Analysis.Sweep
	if sweep == nil {
		// The environment fixed k (the paper's 18); run the sweep here.
		var err error
		sweep, err = kmeansSweep(env)
		if err != nil {
			return nil, err
		}
	}
	t := report.NewTable(
		"Figure 9: SSE and silhouette score vs cluster count",
		"k", "sse", "silhouette",
	)
	for _, p := range sweep {
		t.MustAddRow(report.I(p.K), report.F(p.SSE, 1), report.F(p.Silhouette, 4))
	}
	knee, err := kmeans.KneeK(sweep, 0.12)
	if err != nil {
		return nil, err
	}
	t.AddNote("knee at k = %d; environment uses k = %d (paper: 18)", knee, env.Analysis.Clustering.K)
	return t, nil
}

func kmeansSweep(env *Env) ([]kmeans.SweepPoint, error) {
	maxK := 40
	if maxK > env.Analysis.Scores.Rows() {
		maxK = env.Analysis.Scores.Rows()
	}
	return kmeans.Sweep(env.Analysis.Scores, 4, maxK, kmeans.Options{
		Rand: rand.New(rand.NewSource(env.Opts.Seed)),
	})
}

// Figure10 reproduces the cluster radar data: every cluster centre's
// value on each selected PC, plus the cluster's weight (the radar plots
// of the paper rendered as a grid).
func Figure10(env *Env) (*report.Table, error) {
	k := env.Analysis.Clustering.K
	numPC := env.Analysis.PCA.NumPC
	cols := make([]string, 0, numPC+2)
	cols = append(cols, "cluster", "weight-pct")
	for pc := 0; pc < numPC; pc++ {
		cols = append(cols, fmt.Sprintf("pc%d", pc))
	}
	t := report.NewTable("Figure 10: cluster centres in PC space with weights", cols...)

	weights := make(map[int]float64, len(env.Analysis.Representatives))
	for _, rep := range env.Analysis.Representatives {
		weights[rep.Cluster] = rep.Weight
	}
	for c := 0; c < k; c++ {
		centre, err := env.Analysis.ClusterCenterPCs(c)
		if err != nil {
			return nil, err
		}
		row := make([]string, 0, numPC+2)
		row = append(row, report.I(c), report.F(100*weights[c], 1))
		for _, v := range centre {
			row = append(row, report.F(v, 2))
		}
		t.MustAddRow(row...)
	}
	t.AddNote("%d clusters over %d scenarios; weights are cluster population shares", k, env.Scenarios().Len())
	return t, nil
}

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func contribString(cs []pca.Contribution, prec int) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = fmt.Sprintf("%s(%+.*f)", c.Metric, prec, c.Weight)
	}
	return strings.Join(parts, " ")
}
