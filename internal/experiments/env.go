// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec 3 and 5) from the simulated datacenter. Each FigureN /
// TableN function returns a report.Table whose rows correspond to the
// series the paper plots; the bench harness at the repository root runs
// one benchmark per experiment.
package experiments

import (
	"fmt"
	"time"

	"flare/internal/analyzer"
	"flare/internal/dcsim"
	"flare/internal/evaluate"
	"flare/internal/machine"
	"flare/internal/metrics"
	"flare/internal/perfscore"
	"flare/internal/profiler"
	"flare/internal/replayer"
	"flare/internal/scenario"
	"flare/internal/workload"
)

// EnvOptions sizes the experiment environment.
type EnvOptions struct {
	// Seed drives the whole environment.
	Seed int64
	// TraceDays is the simulated collection window; the default 28 lands
	// near the paper's 895-scenario population. Shorter values make quick
	// test environments.
	TraceDays int
	// Clusters fixes the representative count (the paper's 18); 0 selects
	// automatically from the sweep knee.
	Clusters int
	// Shape overrides the machine SKU (Sec 5.5 heterogeneous study); the
	// zero value means the Table 2 default shape.
	Shape machine.Shape
}

// DefaultEnvOptions returns the paper-scale environment settings.
func DefaultEnvOptions() EnvOptions {
	return EnvOptions{Seed: 1, TraceDays: 28, Clusters: 18}
}

// Env is the shared expensive state behind the experiments: the trace,
// the profiled dataset, the analysis, and the ground-truth evaluator.
type Env struct {
	Opts EnvOptions

	Machine  machine.Config
	Jobs     *workload.Catalog
	Metrics  *metrics.Catalog
	Trace    *dcsim.Trace
	Dataset  *profiler.Dataset
	Analysis *analyzer.Analysis
	Inherent *perfscore.Inherent
	Eval     *evaluate.Evaluator

	// Features are the paper's three evaluation features (Table 4).
	Features []machine.Feature
}

// NewEnv builds the environment: simulate the datacenter, profile every
// scenario, run the Analyzer, and prepare the ground-truth evaluator.
func NewEnv(opts EnvOptions) (*Env, error) {
	if opts.TraceDays <= 0 {
		opts.TraceDays = 28
	}
	if opts.Shape.Name == "" {
		opts.Shape = machine.DefaultShape()
	}
	env := &Env{
		Opts:     opts,
		Machine:  machine.BaselineConfig(opts.Shape),
		Jobs:     workload.DefaultCatalog(),
		Metrics:  metrics.DefaultCatalog(),
		Features: paperFeaturesFor(opts.Shape),
	}

	simCfg := dcsim.DefaultConfig()
	simCfg.Seed = opts.Seed
	simCfg.Shape = opts.Shape
	simCfg.Duration = time.Duration(opts.TraceDays) * 24 * time.Hour
	trace, err := dcsim.Run(simCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: simulating datacenter: %w", err)
	}
	env.Trace = trace

	profOpts := profiler.DefaultOptions()
	profOpts.Seed = opts.Seed
	env.Dataset, err = profiler.Collect(env.Machine, trace.Scenarios, env.Jobs, env.Metrics, profOpts)
	if err != nil {
		return nil, fmt.Errorf("experiments: profiling: %w", err)
	}

	anOpts := analyzer.DefaultOptions()
	anOpts.Seed = opts.Seed
	anOpts.Clusters = opts.Clusters
	env.Analysis, err = analyzer.Analyze(env.Dataset, anOpts)
	if err != nil {
		return nil, fmt.Errorf("experiments: analysis: %w", err)
	}

	env.Inherent, err = perfscore.NewInherent(env.Machine, env.Jobs)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	env.Eval, err = evaluate.New(env.Machine, env.Jobs, env.Inherent, trace.Scenarios)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return env, nil
}

// FLAREEstimate runs FLARE's all-job estimation for one feature.
func (env *Env) FLAREEstimate(feat machine.Feature) (*replayer.Estimate, error) {
	opts := replayer.DefaultOptions()
	opts.Seed = env.Opts.Seed
	return replayer.EstimateAllJob(env.Analysis, env.Jobs, env.Inherent, env.Machine, feat, opts)
}

// FLAREPerJob runs FLARE's per-job estimation for one feature and job.
func (env *Env) FLAREPerJob(feat machine.Feature, job string) (*replayer.JobEstimate, error) {
	opts := replayer.DefaultOptions()
	opts.Seed = env.Opts.Seed
	return replayer.EstimatePerJob(env.Analysis, env.Jobs, env.Inherent, env.Machine, feat, job, opts)
}

// Scenarios returns the trace's scenario population.
func (env *Env) Scenarios() *scenario.Set { return env.Trace.Scenarios }

// paperFeaturesFor returns the Table 4 feature set adapted to a shape:
// on the Table 2 default these are exactly machine.PaperFeatures(); on
// other shapes the cache and clock settings scale to stay within range
// (e.g. the Small shape's 2.6 GHz part still caps at 1.8 GHz, and cache
// sizing still cuts to 40% of the socket LLC).
func paperFeaturesFor(shape machine.Shape) []machine.Feature {
	llc := 12.0
	if shape.LLCMBPerSocket < 30 {
		llc = 0.4 * shape.LLCMBPerSocket
	}
	return []machine.Feature{
		machine.CacheSizing(llc),
		machine.DVFSCap(1.8),
		machine.SMTOff(),
	}
}
