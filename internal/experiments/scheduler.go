package experiments

import (
	"time"

	"flare/internal/dcsim"
	"flare/internal/report"
)

// ExtensionSchedulerPolicies quantifies how the placement policy shapes
// the colocation population (the premise of Sec 5.6: schedulers promote
// and prohibit scenarios rather than inventing unseen ones): the same
// deployments under least-utilised (the paper's scheduler), first-fit
// packing, and random placement.
func ExtensionSchedulerPolicies(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Extension: scheduler placement policies and the scenario population",
		"policy", "scenarios", "mean-occupancy", "max-occupancy", "rejected",
	)
	for _, pol := range []dcsim.Policy{dcsim.PolicyLeastUtilised, dcsim.PolicyFirstFit, dcsim.PolicyRandom} {
		cfg := dcsim.DefaultConfig()
		cfg.Shape = env.Opts.Shape
		cfg.Seed = env.Opts.Seed
		cfg.Scheduler = pol
		cfg.Duration = time.Duration(env.Opts.TraceDays) * 24 * time.Hour
		trace, err := dcsim.Run(cfg)
		if err != nil {
			return nil, err
		}
		capVCPUs := env.Machine.VCPUs()
		var sum, worst float64
		for _, sc := range trace.Scenarios.All() {
			occ := sc.Occupancy(capVCPUs)
			sum += occ
			if occ > worst {
				worst = occ
			}
		}
		t.MustAddRow(
			pol.String(),
			report.I(trace.Scenarios.Len()),
			report.F(sum/float64(trace.Scenarios.Len()), 3),
			report.F(worst, 3),
			report.I(trace.Stats.Rejected),
		)
	}
	t.AddNote("a scheduler change re-shapes the population; FLARE handles it by re-running steps 3-4 on the new mix (Sec 5.6)")
	return t, nil
}
