package experiments

import (
	"flare/internal/replayer"
	"flare/internal/report"
)

// ExtensionConfidenceIntervals quantifies the uncertainty of FLARE's
// estimator: replaying a few extra ranked members per cluster yields
// within-cluster variances and a stratified confidence interval around
// the weighted estimate — an explicit accuracy/cost knob on top of the
// paper's point estimate.
func ExtensionConfidenceIntervals(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Extension: stratified confidence intervals on FLARE estimates",
		"feature", "extra-per-cluster", "cost", "estimate", "ci-half-width", "truth", "covered",
	)
	ropts := replayer.DefaultOptions()
	ropts.Seed = env.Opts.Seed
	for _, feat := range env.Features {
		full, err := env.Eval.FullDatacenter(feat)
		if err != nil {
			return nil, err
		}
		for _, extra := range []int{0, 2, 4} {
			est, err := replayer.EstimateAllJobWithCI(env.Analysis, env.Jobs, env.Inherent,
				env.Machine, feat, extra, 0.95, ropts)
			if err != nil {
				return nil, err
			}
			covered := "n/a"
			if extra > 0 {
				covered = boolMark(est.CI.Contains(full.MeanReductionPct))
			}
			t.MustAddRow(
				feat.Name,
				report.I(extra),
				report.I(est.ScenariosReplayed),
				report.F(est.ReductionPct, 2),
				report.F(est.CI.HalfWidth(), 2),
				report.F(full.MeanReductionPct, 2),
				covered,
			)
		}
	}
	t.AddNote("depth 0 is the paper's point estimate; each extra replay per cluster buys a tighter interval")
	return t, nil
}
