package experiments

import (
	"fmt"

	"flare/internal/report"
)

// samplingTrials matches the paper's 1,000 sampling trials (Fig 12a).
const samplingTrials = 1000

// Figure11 reproduces the per-cluster impact measurements: each
// representative scenario's MIPS reduction under the three features.
func Figure11(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Figure 11: MIPS reduction (%) per representative scenario",
		"cluster", "scenario", "weight-pct", "feature1", "feature2", "feature3",
	)
	type row struct {
		cluster, scenario int
		weight            float64
		red               [3]float64
	}
	rows := make(map[int]*row)
	for fi, feat := range env.Features {
		est, err := env.FLAREEstimate(feat)
		if err != nil {
			return nil, err
		}
		for _, ci := range est.PerCluster {
			r, ok := rows[ci.Cluster]
			if !ok {
				r = &row{cluster: ci.Cluster, scenario: ci.ScenarioID, weight: ci.Weight}
				rows[ci.Cluster] = r
			}
			r.red[fi] = ci.ReductionPct
		}
	}
	for c := 0; c < env.Analysis.Clustering.K; c++ {
		r, ok := rows[c]
		if !ok {
			continue
		}
		t.MustAddRow(
			report.I(r.cluster), report.I(r.scenario), report.F(100*r.weight, 1),
			report.F(r.red[0], 2), report.F(r.red[1], 2), report.F(r.red[2], 2),
		)
	}
	t.AddNote("clusters respond differently to the same feature (distinct resource characteristics)")
	return t, nil
}

// Figure12a reproduces the all-job accuracy comparison: the datacenter
// ground truth, the 1,000-trial sampling distribution at FLARE's cost,
// and FLARE's estimate, for each feature.
func Figure12a(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Figure 12a: comprehensive impact on all HP jobs (MIPS reduction %)",
		"feature", "datacenter", "sampling-mean", "sampling-p2.5", "sampling-p97.5",
		"sampling-max-err", "flare", "flare-abs-err",
	)
	for _, feat := range env.Features {
		full, err := env.Eval.FullDatacenter(feat)
		if err != nil {
			return nil, err
		}
		est, err := env.FLAREEstimate(feat)
		if err != nil {
			return nil, err
		}
		samp, err := env.Eval.Sample(feat, est.ScenariosReplayed, samplingTrials, env.Opts.Seed)
		if err != nil {
			return nil, err
		}
		lo, err := samp.Quantile(0.025)
		if err != nil {
			return nil, err
		}
		hi, err := samp.Quantile(0.975)
		if err != nil {
			return nil, err
		}
		t.MustAddRow(
			feat.Name,
			report.F(full.MeanReductionPct, 2),
			report.F(samp.Mean(), 2),
			report.F(lo, 2),
			report.F(hi, 2),
			report.F(samp.MaxAbsError(full.MeanReductionPct), 2),
			report.F(est.ReductionPct, 2),
			report.F(abs(est.ReductionPct-full.MeanReductionPct), 2),
		)
	}
	t.AddNote("sampling uses %d scenarios per trial (FLARE's cost), %d trials", len(env.Analysis.Representatives), samplingTrials)
	return t, nil
}

// Figure12b reproduces the per-job accuracy comparison for each feature
// and HP job: truth, sampling 95% interval, and FLARE.
func Figure12b(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Figure 12b: per-HP-job impact (MIPS reduction %)",
		"feature", "job", "datacenter", "sampling-p2.5", "sampling-p97.5", "flare", "flare-abs-err",
	)
	n := len(env.Analysis.Representatives)
	for _, feat := range env.Features {
		for _, job := range jobNames(env.Jobs) {
			truth, _, err := env.Eval.PerJobTruth(feat, job)
			if err != nil {
				return nil, err
			}
			samp, err := env.Eval.SamplePerJob(feat, job, n, samplingTrials/2, env.Opts.Seed)
			if err != nil {
				return nil, err
			}
			lo, err := samp.Quantile(0.025)
			if err != nil {
				return nil, err
			}
			hi, err := samp.Quantile(0.975)
			if err != nil {
				return nil, err
			}
			est, err := env.FLAREPerJob(feat, job)
			if err != nil {
				return nil, err
			}
			t.MustAddRow(
				feat.Name, job,
				report.F(truth, 2),
				report.F(lo, 2), report.F(hi, 2),
				report.F(est.ReductionPct, 2),
				report.F(abs(est.ReductionPct-truth), 2),
			)
		}
	}
	return t, nil
}

// Figure13 reproduces the cost/accuracy tradeoff: the expected maximum
// sampling error (95% CI with finite population correction) as a function
// of evaluation cost, against FLARE's fixed cost and observed error.
func Figure13(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Figure 13: evaluation cost vs expected max estimation error",
		"feature", "method", "cost-scenarios", "expected-or-observed-error",
	)
	n := env.Scenarios().Len()
	sizes := []int{18, 36, 90, 180, 360}
	if n < 360 {
		sizes = []int{n / 48, n / 24, n / 10, n / 5, n / 2}
		for i := range sizes {
			if sizes[i] < 2 {
				sizes[i] = 2
			}
		}
	}
	sizes = append(sizes, n)

	for _, feat := range env.Features {
		curve, err := env.Eval.SamplingErrorCurve(feat, sizes, 0.95)
		if err != nil {
			return nil, err
		}
		for _, p := range curve {
			t.MustAddRow(feat.Name, fmt.Sprintf("sampling-n=%d", p.N), report.I(p.N), report.F(p.ExpectedError, 3))
		}
		full, err := env.Eval.FullDatacenter(feat)
		if err != nil {
			return nil, err
		}
		est, err := env.FLAREEstimate(feat)
		if err != nil {
			return nil, err
		}
		t.MustAddRow(feat.Name, "flare", report.I(est.ScenariosReplayed),
			report.F(abs(est.ReductionPct-full.MeanReductionPct), 3))
	}
	t.AddNote("even ~10x FLARE's cost, sampling's expected error stays above FLARE's observed error (paper Sec 5.4)")
	return t, nil
}

// HeadlineClaims reproduces the abstract's summary numbers: per feature,
// FLARE's absolute error and the cost reductions versus full evaluation
// and versus sampling-at-equal-accuracy.
func HeadlineClaims(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Headline: accuracy and overhead reduction",
		"feature", "truth", "flare", "abs-err", "flare-cost", "full-cost",
		"sampling-cost", "full/flare", "sampling/flare",
	)
	for _, feat := range env.Features {
		full, err := env.Eval.FullDatacenter(feat)
		if err != nil {
			return nil, err
		}
		est, err := env.FLAREEstimate(feat)
		if err != nil {
			return nil, err
		}
		cmp, err := env.Eval.CompareCosts(feat, est.ReductionPct, est.ScenariosReplayed)
		if err != nil {
			return nil, err
		}
		t.MustAddRow(
			feat.Name,
			report.F(full.MeanReductionPct, 2),
			report.F(est.ReductionPct, 2),
			report.F(cmp.FLAREAbsError, 2),
			report.I(cmp.FLARECost),
			report.I(cmp.FullCost),
			report.I(cmp.SamplingCost),
			report.F(cmp.FullOverFLARE, 1),
			report.F(cmp.SamplingOverFLARE, 1),
		)
	}
	t.AddNote("paper claims: ~1%% errors, 50x lower cost than full evaluation, 10x+ lower than sampling")
	return t, nil
}
