package experiments

import (
	"time"

	"flare/internal/dcsim"
	"flare/internal/drift"
	"flare/internal/machine"
	"flare/internal/profiler"
	"flare/internal/report"
)

// ExtensionDriftDetection demonstrates representative staleness
// monitoring (the operational side of Sec 5.5/5.6): a detector calibrated
// on a held-out window of the training regime stays quiet on fresh
// same-regime traffic and fires when the machine shape changes.
func ExtensionDriftDetection(env *Env) (*report.Table, error) {
	det, err := drift.NewDetector(env.Analysis, drift.DefaultQuantile)
	if err != nil {
		return nil, err
	}

	collect := func(shape machine.Shape, seed int64) (*profiler.Dataset, error) {
		simCfg := dcsim.DefaultConfig()
		simCfg.Shape = shape
		simCfg.Seed = seed
		simCfg.Duration = time.Duration(env.Opts.TraceDays) * 24 * time.Hour
		trace, err := dcsim.Run(simCfg)
		if err != nil {
			return nil, err
		}
		opts := profiler.DefaultOptions()
		opts.Seed = seed
		return profiler.Collect(machine.BaselineConfig(shape), trace.Scenarios,
			env.Jobs, env.Metrics, opts)
	}

	calDS, err := collect(env.Opts.Shape, env.Opts.Seed+50)
	if err != nil {
		return nil, err
	}
	if err := det.Calibrate(calDS.Matrix); err != nil {
		return nil, err
	}

	t := report.NewTable(
		"Extension: representative staleness (drift) detection",
		"population", "scenarios", "novel-fraction", "expected", "drifted",
	)
	cases := []struct {
		name  string
		shape machine.Shape
		seed  int64
	}{
		{"same-regime", env.Opts.Shape, env.Opts.Seed + 99},
		{"small-shape", machine.SmallShape(), env.Opts.Seed + 7},
	}
	for _, c := range cases {
		ds, err := collect(c.shape, c.seed)
		if err != nil {
			return nil, err
		}
		rep, err := det.Assess(ds.Matrix)
		if err != nil {
			return nil, err
		}
		t.MustAddRow(c.name,
			report.I(rep.Scenarios),
			report.F(rep.NovelFraction, 3),
			report.F(rep.ExpectedNovel, 3),
			boolMark(rep.Drifted),
		)
	}
	t.AddNote("drift fires -> re-run Analyzer steps 3-4 (scheduler change) or re-collect per shape (Sec 5.5)")
	return t, nil
}
