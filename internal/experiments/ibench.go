package experiments

import (
	"flare/internal/ibench"
	"flare/internal/perfmodel"
	"flare/internal/perfscore"
	"flare/internal/report"
	"flare/internal/scenario"
)

// ExtensionIBenchReplay evaluates the paper's Sec 5.1 suggestion of using
// iBench-style high-precision load generators on the testbed: for each
// representative scenario the HP jobs of interest run unmodified while
// the LP background is replaced by a generator mix fitted to reproduce
// its interference pressures. The table compares Feature 1's HP impact
// between the real colocation and the hybrid replay — close agreement
// means representatives can be replayed without the original LP binaries.
func ExtensionIBenchReplay(env *Env) (*report.Table, error) {
	feat := env.Features[0]

	t := report.NewTable(
		"Extension: iBench-style background replay of representatives (Feature 1)",
		"cluster", "scenario", "lp-instances", "real-impact-pct", "hybrid-impact-pct", "abs-diff",
	)
	var worst float64
	for _, rep := range env.Analysis.Representatives {
		sc, err := env.Scenarios().Get(rep.ScenarioID)
		if err != nil {
			return nil, err
		}

		realImp, err := perfscore.EvaluateScenario(env.Machine, feat, sc, env.Jobs, env.Inherent, perfscore.Options{})
		if err != nil {
			return nil, err
		}

		hybrid, lpInstances, err := hybridAssignments(env, sc)
		if err != nil {
			return nil, err
		}
		hybImp, err := perfscore.EvaluateAssignments(env.Machine, feat, hybrid, env.Inherent, perfscore.Options{})
		if err != nil {
			return nil, err
		}

		diff := abs(realImp.ReductionPct - hybImp.ReductionPct)
		if diff > worst {
			worst = diff
		}
		t.MustAddRow(
			report.I(rep.Cluster),
			report.I(rep.ScenarioID),
			report.I(lpInstances),
			report.F(realImp.ReductionPct, 2),
			report.F(hybImp.ReductionPct, 2),
			report.F(diff, 2),
		)
	}
	t.AddNote("worst real-vs-hybrid HP impact difference: %.2f points", worst)
	return t, nil
}

// hybridAssignments keeps a scenario's HP jobs real and substitutes its
// LP background with a fitted generator mix. Scenarios without LP jobs
// replay unchanged.
func hybridAssignments(env *Env, sc scenario.Scenario) ([]perfmodel.Assignment, int, error) {
	var hpPlacements, lpPlacements []scenario.Placement
	for _, p := range sc.Placements {
		prof, err := env.Jobs.Lookup(p.Job)
		if err != nil {
			return nil, 0, err
		}
		if prof.IsHP() {
			hpPlacements = append(hpPlacements, p)
		} else {
			lpPlacements = append(lpPlacements, p)
		}
	}

	var out []perfmodel.Assignment
	for _, p := range hpPlacements {
		prof, err := env.Jobs.Lookup(p.Job)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, perfmodel.Assignment{Profile: prof, Instances: p.Instances})
	}
	if len(lpPlacements) == 0 {
		return out, 0, nil
	}

	lpScenario, err := scenario.New(lpPlacements)
	if err != nil {
		return nil, 0, err
	}
	fit, err := ibench.FitScenario(env.Machine, lpScenario, env.Jobs)
	if err != nil {
		return nil, 0, err
	}
	out = append(out, fit.Assignments...)
	return out, lpScenario.TotalInstances(), nil
}
