package experiments

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"flare/internal/report"
)

// quickEnv is a reduced-scale environment shared across the package's
// tests (a 10-day trace instead of the paper's 28 days keeps each test
// fast while exercising every experiment path).
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = NewEnv(EnvOptions{Seed: 1, TraceDays: 10, Clusters: 18})
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

// cell parses a table cell as float.
func cell(t *testing.T, tb *report.Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q is not numeric: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func TestNewEnvPaperScale(t *testing.T) {
	env := testEnv(t)
	if env.Scenarios().Len() < 200 {
		t.Errorf("population = %d, want a few hundred even at 10 days", env.Scenarios().Len())
	}
	if got := env.Analysis.Clustering.K; got != 18 {
		t.Errorf("clusters = %d, want 18", got)
	}
	if len(env.Features) != 3 {
		t.Errorf("features = %d, want 3", len(env.Features))
	}
}

func TestFigure2Shape(t *testing.T) {
	env := testEnv(t)
	tb, err := Figure2(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("Figure 2 has %d rows, want 8 HP jobs", len(tb.Rows))
	}
	// The paper's pitfall: at least one job's load-testing estimate
	// deviates from the datacenter truth by over 2 points.
	var worst float64
	for i := range tb.Rows {
		if d := cell(t, tb, i, 4); d > worst {
			worst = d
		}
	}
	if worst < 2 {
		t.Errorf("worst load-testing deviation %v, want the pitfall to be visible (>= 2)", worst)
	}
}

func TestFigure3aShape(t *testing.T) {
	env := testEnv(t)
	tb, err := Figure3a(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != env.Scenarios().Len() {
		t.Fatalf("Figure 3a has %d rows, want one per scenario (%d)", len(tb.Rows), env.Scenarios().Len())
	}
	// Occupancy is sorted ascending and spans a wide range.
	prev := -1.0
	for i := range tb.Rows {
		occ := cell(t, tb, i, 5)
		if occ < prev {
			t.Fatalf("occupancy not sorted at row %d", i)
		}
		prev = occ
	}
	if first, last := cell(t, tb, 0, 5), prev; last-first < 0.4 {
		t.Errorf("occupancy range [%v, %v] too narrow for Fig 3a's diversity", first, last)
	}
}

func TestFigure3bWeakCorrelation(t *testing.T) {
	env := testEnv(t)
	corr, err := Figure3bCorrelation(env)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's point: MPKI alone does not predict the impact. The
	// correlation must be far from perfect.
	if corr > 0.8 || corr < -0.8 {
		t.Errorf("impact-MPKI correlation = %v; should be weak/moderate (paper Sec 3.2)", corr)
	}
	tb, err := Figure3b(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != env.Scenarios().Len() {
		t.Errorf("Figure 3b has %d rows, want %d", len(tb.Rows), env.Scenarios().Len())
	}
}

func TestFigure6Shape(t *testing.T) {
	env := testEnv(t)
	tb, err := Figure6(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != env.Metrics.Len() {
		t.Errorf("Figure 6 has %d rows, want %d metrics", len(tb.Rows), env.Metrics.Len())
	}
	kept := 0
	for i := range tb.Rows {
		if tb.Rows[i][4] == "yes" {
			kept++
		}
	}
	if kept != len(env.Analysis.RefinedNames) {
		t.Errorf("kept marks = %d, want %d", kept, len(env.Analysis.RefinedNames))
	}
}

func TestFigure7Selects95Pct(t *testing.T) {
	env := testEnv(t)
	tb, err := Figure7(env)
	if err != nil {
		t.Fatal(err)
	}
	numPC := env.Analysis.PCA.NumPC
	// Cumulative at the last selected PC >= 0.95; at the one before < 0.95.
	lastSel := cell(t, tb, numPC-1, 2)
	if lastSel < 0.95 {
		t.Errorf("cumulative at selected count = %v, want >= 0.95", lastSel)
	}
	if numPC >= 2 {
		if prev := cell(t, tb, numPC-2, 2); prev >= 0.95 {
			t.Errorf("selection not minimal: cumulative already %v one PC earlier", prev)
		}
	}
}

func TestFigure8MentionsBothLevels(t *testing.T) {
	env := testEnv(t)
	tb, err := Figure8(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != env.Analysis.PCA.NumPC {
		t.Fatalf("Figure 8 rows = %d, want %d", len(tb.Rows), env.Analysis.PCA.NumPC)
	}
	// The two-level collection must surface in the interpretations:
	// both Machine- and HP-level behaviours appear somewhere.
	joined := ""
	for i := range tb.Rows {
		joined += tb.Rows[i][2] + " "
	}
	if !strings.Contains(joined, "Machine") || !strings.Contains(joined, "HP") {
		t.Errorf("PC interpretations never mention both levels:\n%s", joined)
	}
}

func TestFigure9SweepQuality(t *testing.T) {
	env := testEnv(t)
	tb, err := Figure9(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 20 {
		t.Fatalf("Figure 9 has %d rows, want a 4..40 sweep", len(tb.Rows))
	}
	// SSE roughly decreasing over the sweep.
	first, last := cell(t, tb, 0, 1), cell(t, tb, len(tb.Rows)-1, 1)
	if last >= first {
		t.Errorf("SSE did not decrease over the sweep: %v -> %v", first, last)
	}
	// Silhouettes are valid scores.
	for i := range tb.Rows {
		s := cell(t, tb, i, 2)
		if s < -1 || s > 1 {
			t.Errorf("silhouette out of range at row %d: %v", i, s)
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	env := testEnv(t)
	tb, err := Figure10(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != env.Analysis.Clustering.K {
		t.Errorf("Figure 10 rows = %d, want %d clusters", len(tb.Rows), env.Analysis.Clustering.K)
	}
	if len(tb.Columns) != env.Analysis.PCA.NumPC+2 {
		t.Errorf("Figure 10 columns = %d, want %d", len(tb.Columns), env.Analysis.PCA.NumPC+2)
	}
	var weightSum float64
	for i := range tb.Rows {
		weightSum += cell(t, tb, i, 1)
	}
	if weightSum < 99 || weightSum > 101 {
		t.Errorf("cluster weights sum to %v%%, want 100%%", weightSum)
	}
}

func TestFigure11ClusterDiversity(t *testing.T) {
	env := testEnv(t)
	tb, err := Figure11(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("Figure 11 empty")
	}
	// Feature 1 responses must differ across clusters.
	lo, hi := 1e9, -1e9
	for i := range tb.Rows {
		v := cell(t, tb, i, 3)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 1 {
		t.Errorf("Feature 1 cluster responses span only %v points", hi-lo)
	}
}

func TestFigure12aAccuracy(t *testing.T) {
	env := testEnv(t)
	tb, err := Figure12a(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("Figure 12a rows = %d, want 3 features", len(tb.Rows))
	}
	for i := range tb.Rows {
		flareErr := cell(t, tb, i, 7)
		sampMaxErr := cell(t, tb, i, 5)
		if flareErr > 2.5 {
			t.Errorf("row %d: FLARE error %v, want < 2.5 (paper: ~1%%)", i, flareErr)
		}
		if sampMaxErr <= flareErr {
			t.Errorf("row %d: sampling max error %v not above FLARE error %v", i, sampMaxErr, flareErr)
		}
	}
}

func TestFigure12bShape(t *testing.T) {
	env := testEnv(t)
	tb, err := Figure12b(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3*8 {
		t.Fatalf("Figure 12b rows = %d, want 24 (3 features x 8 HP jobs)", len(tb.Rows))
	}
	// FLARE per-job errors: mostly small, occasionally larger (the paper
	// observes occasional inaccuracy).
	large := 0
	for i := range tb.Rows {
		if cell(t, tb, i, 6) > 5 {
			large++
		}
	}
	if large > len(tb.Rows)/3 {
		t.Errorf("%d of %d per-job estimates off by > 5 points", large, len(tb.Rows))
	}
}

func TestFigure13FLAREBeatsSamplingAtCost(t *testing.T) {
	env := testEnv(t)
	tb, err := Figure13(env)
	if err != nil {
		t.Fatal(err)
	}
	// For each feature, find sampling error at FLARE's cost and compare.
	type entry struct{ samplingAtCost, flare float64 }
	entries := map[string]*entry{}
	flareCost := len(env.Analysis.Representatives)
	for i := range tb.Rows {
		featName := tb.Rows[i][0]
		e, ok := entries[featName]
		if !ok {
			e = &entry{samplingAtCost: -1, flare: -1}
			entries[featName] = e
		}
		cost := int(cell(t, tb, i, 2))
		val := cell(t, tb, i, 3)
		if tb.Rows[i][1] == "flare" {
			e.flare = val
		} else if cost <= flareCost+2 && e.samplingAtCost < 0 {
			e.samplingAtCost = val
		}
	}
	for name, e := range entries {
		if e.flare < 0 || e.samplingAtCost < 0 {
			t.Errorf("%s: missing rows", name)
			continue
		}
		if e.flare >= e.samplingAtCost {
			t.Errorf("%s: FLARE error %v not below sampling-at-equal-cost %v", name, e.flare, e.samplingAtCost)
		}
	}
}

func TestHeadlineClaims(t *testing.T) {
	env := testEnv(t)
	tb, err := HeadlineClaims(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("headline rows = %d, want 3", len(tb.Rows))
	}
	for i := range tb.Rows {
		absErr := cell(t, tb, i, 3)
		fullOverFlare := cell(t, tb, i, 7)
		sampOverFlare := cell(t, tb, i, 8)
		if absErr > 2.5 {
			t.Errorf("row %d: abs error %v, want ~1%% regime", i, absErr)
		}
		if fullOverFlare < 10 {
			t.Errorf("row %d: full/FLARE = %v, want large (paper: 50x)", i, fullOverFlare)
		}
		if sampOverFlare < 2 {
			t.Errorf("row %d: sampling/FLARE = %v, want > 2 (paper: 10x)", i, sampOverFlare)
		}
	}
}

func TestTables(t *testing.T) {
	env := testEnv(t)
	for name, fn := range map[string]func(*Env) (*report.Table, error){
		"Table2": Table2, "Table3": Table3, "Table4": Table4, "Table5": Table5,
	} {
		tb, err := fn(env)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty", name)
		}
		if out := tb.Render(); !strings.Contains(out, "==") {
			t.Errorf("%s: render missing title", name)
		}
	}
}

func TestFigure14a(t *testing.T) {
	env := testEnv(t)
	tb, err := Figure14a(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("Figure 14a rows = %d, want 2 shapes", len(tb.Rows))
	}
	defaultOcc := cell(t, tb, 0, 3)
	smallOcc := cell(t, tb, 1, 3)
	if defaultOcc > 0.8 {
		t.Errorf("example scenario occupies %v of default machine, want ~0.7", defaultOcc)
	}
	if smallOcc < 1 {
		t.Errorf("example scenario occupies %v of small machine, want saturation (>= 1)", smallOcc)
	}
}

func TestAblations(t *testing.T) {
	env := testEnv(t)

	tb, err := AblationClusterCount(env, []int{6, 18, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Errorf("cluster-count ablation rows = %d, want 3", len(tb.Rows))
	}

	tb, err = AblationPCCount(env, []float64{0.7, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Errorf("PC-count ablation rows = %d, want 2", len(tb.Rows))
	}

	if _, err := AblationWhitening(env); err != nil {
		t.Errorf("whitening ablation: %v", err)
	}
	if _, err := AblationRefinement(env); err != nil {
		t.Errorf("refinement ablation: %v", err)
	}

	tb, err = AblationRepresentativeSelection(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Errorf("representative-selection ablation rows = %d, want 3", len(tb.Rows))
	}

	tb, err = AblationWeighting(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Errorf("weighting ablation rows = %d, want 2", len(tb.Rows))
	}
}

func TestFigure14b(t *testing.T) {
	env := testEnv(t)
	tb, err := Figure14b(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("Figure 14b rows = %d, want 8 HP jobs", len(tb.Rows))
	}
	// FLARE with re-derived representatives must beat load testing in
	// aggregate on the new shape (paper Sec 5.5).
	var flareErr, ltErr float64
	for i := range tb.Rows {
		flareErr += cell(t, tb, i, 4)
		ltErr += cell(t, tb, i, 5)
	}
	if flareErr >= ltErr {
		t.Errorf("FLARE total error %v not below load-testing %v on the small shape", flareErr, ltErr)
	}
}

func TestExtensionTemporalMetrics(t *testing.T) {
	env := testEnv(t)
	tb, err := ExtensionTemporalMetrics(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("temporal extension rows = %d, want 6 (2 pipelines x 3 features)", len(tb.Rows))
	}
	// The enriched pipeline must use more raw metrics and keep errors in
	// the same accuracy regime.
	if cell(t, tb, 3, 1) <= cell(t, tb, 0, 1) {
		t.Error("temporal pipeline does not report more raw metrics")
	}
	for i := 3; i < 6; i++ {
		if e := cell(t, tb, i, 5); e > 3 {
			t.Errorf("temporal pipeline error %v at row %d, want same regime as baseline", e, i)
		}
	}
}

func TestAblationClusteringMethod(t *testing.T) {
	env := testEnv(t)
	tb, err := AblationClusteringMethod(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("clustering-method ablation rows = %d, want 2", len(tb.Rows))
	}
	for i := range tb.Rows {
		if e := cell(t, tb, i, 2); e > 3 {
			t.Errorf("%s error %v, want both methods in the accurate regime", tb.Rows[i][0], e)
		}
	}
}

func TestExtensionCanaryComparison(t *testing.T) {
	env := testEnv(t)
	tb, err := ExtensionCanaryComparison(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 {
		t.Fatalf("canary comparison rows = %d, want 9 (3 features x (2 canary + flare))", len(tb.Rows))
	}
	// FLARE's cost must be far below the canary's.
	for i := 0; i < len(tb.Rows); i += 3 {
		canaryCost := cell(t, tb, i, 2)
		flareCost := cell(t, tb, i+2, 2)
		if flareCost >= canaryCost {
			t.Errorf("FLARE cost %v not below canary cost %v", flareCost, canaryCost)
		}
	}
}

func TestExtensionIBenchReplay(t *testing.T) {
	env := testEnv(t)
	tb, err := ExtensionIBenchReplay(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(env.Analysis.Representatives) {
		t.Fatalf("ibench replay rows = %d, want %d", len(tb.Rows), len(env.Analysis.Representatives))
	}
	// Hybrid replay (real HP + generator background) should track the
	// real impact for most clusters.
	offBy := 0
	for i := range tb.Rows {
		if cell(t, tb, i, 5) > 5 {
			offBy++
		}
	}
	if offBy > len(tb.Rows)/4 {
		t.Errorf("%d of %d hybrid replays off by > 5 points", offBy, len(tb.Rows))
	}
}

func TestExtensionDriftDetection(t *testing.T) {
	env := testEnv(t)
	tb, err := ExtensionDriftDetection(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("drift detection rows = %d, want 2", len(tb.Rows))
	}
	if tb.Rows[0][4] != "no" {
		t.Errorf("same-regime population flagged as drifted: %v", tb.Rows[0])
	}
	if tb.Rows[1][4] != "yes" {
		t.Errorf("small-shape population not flagged as drifted: %v", tb.Rows[1])
	}
}

func TestExtensionPerJobMetrics(t *testing.T) {
	env := testEnv(t)
	tb, err := ExtensionPerJobMetrics(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("per-job metrics extension rows = %d, want 6", len(tb.Rows))
	}
	// Both pipelines must stay in the accurate regime.
	for i := range tb.Rows {
		if e := cell(t, tb, i, 3); e > 3 {
			t.Errorf("row %d: all-job error %v out of regime", i, e)
		}
	}
}

func TestExtensionAlternativeMetrics(t *testing.T) {
	env := testEnv(t)
	tb, err := ExtensionAlternativeMetrics(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("alternative metrics rows = %d, want 3", len(tb.Rows))
	}
	for i := range tb.Rows {
		if truth := cell(t, tb, i, 1); truth <= 0 {
			t.Errorf("%s: truth %v, want positive reduction", tb.Rows[i][0], truth)
		}
		if e := cell(t, tb, i, 3); e > 3 {
			t.Errorf("%s: FLARE error %v, want same accuracy regime", tb.Rows[i][0], e)
		}
	}
}

func TestSVGFigures(t *testing.T) {
	env := testEnv(t)
	figs := map[string]func(*Env) (string, error){
		"fig2": Figure2SVG, "fig3a": Figure3aSVG, "fig7": Figure7SVG, "fig9": Figure9SVG,
		"fig10": Figure10SVG, "fig12a": Figure12aSVG, "fig13": Figure13SVG,
	}
	for name, fn := range figs {
		svg, err := fn(env)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
			t.Errorf("%s: output is not a complete SVG document", name)
		}
	}
}

func TestExtensionSchedulerPolicies(t *testing.T) {
	env := testEnv(t)
	tb, err := ExtensionSchedulerPolicies(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("scheduler policies rows = %d, want 3", len(tb.Rows))
	}
	// First-fit packs: its max occupancy must reach (or exceed) the
	// least-utilised policy's.
	if cell(t, tb, 1, 3) < cell(t, tb, 0, 3) {
		t.Errorf("first-fit max occupancy %v below least-utilised %v", cell(t, tb, 1, 3), cell(t, tb, 0, 3))
	}
}

func TestExtensionConfidenceIntervals(t *testing.T) {
	env := testEnv(t)
	tb, err := ExtensionConfidenceIntervals(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 {
		t.Fatalf("confidence rows = %d, want 9 (3 features x 3 depths)", len(tb.Rows))
	}
	for i := 0; i < len(tb.Rows); i += 3 {
		if hw := cell(t, tb, i, 4); hw != 0 {
			t.Errorf("depth-0 half-width = %v, want 0", hw)
		}
		if hw := cell(t, tb, i+1, 4); hw <= 0 {
			t.Errorf("depth-2 half-width = %v, want > 0", hw)
		}
		// Cost grows with depth.
		if cell(t, tb, i+2, 2) <= cell(t, tb, i, 2) {
			t.Errorf("row %d: cost did not grow with depth", i)
		}
	}
}

func TestPaperScaleHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping paper-scale (28-day) integration run in -short mode")
	}
	// Full paper-scale integration: the 28-day trace must reproduce the
	// headline regime end to end.
	env, err := NewEnv(DefaultEnvOptions())
	if err != nil {
		t.Fatal(err)
	}
	if n := env.Scenarios().Len(); n < 500 || n > 1500 {
		t.Fatalf("population = %d, want the paper's regime (~895)", n)
	}
	tb, err := HeadlineClaims(env)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows {
		if e := cell(t, tb, i, 3); e > 1.5 {
			t.Errorf("%s: abs error %v, want ~1%% regime", tb.Rows[i][0], e)
		}
		if r := cell(t, tb, i, 7); r < 40 {
			t.Errorf("%s: full/FLARE = %v, want ~50x", tb.Rows[i][0], r)
		}
		if r := cell(t, tb, i, 8); r < 5 {
			t.Errorf("%s: sampling/FLARE = %v, want ~10x", tb.Rows[i][0], r)
		}
	}
}
