package experiments

import (
	"fmt"

	"flare/internal/report"
)

// ExtensionCanaryComparison adds the canary-cluster methodology the
// paper's introduction discusses (WSMeter [58]) as a fourth comparator:
// dedicating k whole machines to the feature and evaluating every
// colocation they exhibit. The table reports, per feature, the canary's
// estimate spread and cost next to FLARE's.
func ExtensionCanaryComparison(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Extension: canary-cluster (WSMeter-style) vs FLARE",
		"feature", "method", "cost-scenarios", "estimate", "max-abs-err",
	)
	const trials = 200
	perMachine := env.Trace.PerMachine
	for _, feat := range env.Features {
		full, err := env.Eval.FullDatacenter(feat)
		if err != nil {
			return nil, err
		}
		for _, machines := range []int{2, 4} {
			can, err := env.Eval.Canary(feat, perMachine, machines, trials, env.Opts.Seed)
			if err != nil {
				return nil, err
			}
			t.MustAddRow(feat.Name,
				fmt.Sprintf("canary-%dm", machines),
				report.F(can.MeanCost, 0),
				report.F(can.Mean(), 2),
				report.F(can.MaxAbsError(full.MeanReductionPct), 2),
			)
		}
		est, err := env.FLAREEstimate(feat)
		if err != nil {
			return nil, err
		}
		t.MustAddRow(feat.Name, "flare",
			report.I(est.ScenariosReplayed),
			report.F(est.ReductionPct, 2),
			report.F(abs(est.ReductionPct-full.MeanReductionPct), 2),
		)
	}
	t.AddNote("a canary of whole machines evaluates many scenarios (cost) yet its estimate depends on which machines were picked")
	return t, nil
}
