package experiments

import (
	"flare/internal/machine"
	"flare/internal/report"
	"flare/internal/scenario"
	"flare/internal/workload"
)

// Figure14a reproduces the colocation-shift illustration (Sec 5.5): the
// paper's example scenario — two DA instances plus one each of DC, DS,
// GA, WSC, WSV, and an LP job — occupies ~70% of the default machine but
// fully saturates the Small shape, so identical scenarios cannot be
// reproduced across machine shapes.
func Figure14a(env *Env) (*report.Table, error) {
	sc, err := scenario.New([]scenario.Placement{
		{Job: workload.DataAnalytics, Instances: 2},
		{Job: workload.DataCaching, Instances: 1},
		{Job: workload.DataServing, Instances: 1},
		{Job: workload.GraphAnalytics, Instances: 1},
		{Job: workload.WebSearch, Instances: 1},
		{Job: workload.WebServing, Instances: 1},
		{Job: workload.Mcf, Instances: 1},
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		"Figure 14a: one colocation scenario across machine shapes",
		"shape", "machine-vcpus", "scenario-vcpus", "occupancy", "fits",
	)
	for _, shape := range []machine.Shape{machine.DefaultShape(), machine.SmallShape()} {
		vcpus := machine.BaselineConfig(shape).VCPUs()
		occ := sc.Occupancy(vcpus)
		t.MustAddRow(
			shape.Name,
			report.I(vcpus),
			report.I(sc.VCPUs()),
			report.F(occ, 2),
			boolMark(occ <= 1),
		)
	}
	t.AddNote("scenario: %s", sc.Key())
	t.AddNote("identical scenarios cannot be reproduced across shapes; derive representatives per shape")
	return t, nil
}

// Figure14b reproduces the heterogeneous-shape estimation study: on the
// Small machine shape (Table 5), a fresh FLARE run — new trace, new
// representatives — estimates Feature 2's per-job impact against the
// small-shape datacenter ground truth, with conventional load-testing for
// contrast. The environment passed in must be the *default*-shape one;
// the small-shape environment is derived here.
func Figure14b(env *Env) (*report.Table, error) {
	smallOpts := env.Opts
	smallOpts.Shape = machine.SmallShape()
	smallEnv, err := NewEnv(smallOpts)
	if err != nil {
		return nil, err
	}
	feat := smallEnv.Features[1] // Feature 2: DVFS cap

	t := report.NewTable(
		"Figure 14b: per-job estimation on the small machine shape (Feature 2, MIPS reduction %)",
		"job", "datacenter", "flare", "load-testing", "flare-abs-err", "load-testing-abs-err",
	)
	for _, job := range jobNames(smallEnv.Jobs) {
		truth, _, err := smallEnv.Eval.PerJobTruth(feat, job)
		if err != nil {
			return nil, err
		}
		est, err := smallEnv.FLAREPerJob(feat, job)
		if err != nil {
			return nil, err
		}
		lt, err := smallEnv.Eval.LoadTesting(feat, job)
		if err != nil {
			return nil, err
		}
		t.MustAddRow(
			job,
			report.F(truth, 2),
			report.F(est.ReductionPct, 2),
			report.F(lt, 2),
			report.F(abs(est.ReductionPct-truth), 2),
			report.F(abs(lt-truth), 2),
		)
	}
	t.AddNote("representatives re-derived on the small shape: FLARE remains accurate (paper Sec 5.5)")
	return t, nil
}
