package hcluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flare/internal/linalg"
)

// blobs builds n points around k well-separated centres.
func blobs(r *rand.Rand, n, k, dim int, spread float64) (*linalg.Matrix, []int) {
	m := linalg.NewMatrix(n, dim)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		truth[i] = c
		for d := 0; d < dim; d++ {
			m.Set(i, d, float64(c*25)+spread*r.NormFloat64())
		}
	}
	return m, truth
}

func TestClusterValidation(t *testing.T) {
	m := linalg.NewMatrix(5, 2)
	if _, err := Cluster(nil, 2, Ward); err == nil {
		t.Error("nil matrix did not error")
	}
	if _, err := Cluster(m, 0, Ward); err == nil {
		t.Error("k=0 did not error")
	}
	if _, err := Cluster(m, 6, Ward); err == nil {
		t.Error("k>n did not error")
	}
	if _, err := Cluster(m, 2, Linkage(99)); err == nil {
		t.Error("bad linkage did not error")
	}
}

func TestClusterRecoversBlobsAllLinkages(t *testing.T) {
	for _, linkage := range []Linkage{Ward, Average, Single, Complete} {
		t.Run(linkage.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(1))
			m, truth := blobs(r, 90, 3, 3, 0.5)
			res, err := Cluster(m, 3, linkage)
			if err != nil {
				t.Fatal(err)
			}
			mapping := map[int]int{}
			for i, lbl := range res.Labels {
				if prev, ok := mapping[truth[i]]; ok {
					if prev != lbl {
						t.Fatalf("blob %d split across clusters", truth[i])
					}
					continue
				}
				mapping[truth[i]] = lbl
			}
			if len(mapping) != 3 {
				t.Errorf("recovered %d clusters, want 3", len(mapping))
			}
		})
	}
}

func TestClusterSizesAndMergeCount(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m, _ := blobs(r, 40, 4, 2, 1.0)
	res, err := Cluster(m, 4, Ward)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != 40 {
		t.Errorf("sizes sum to %d, want 40", total)
	}
	if len(res.Merges) != 36 {
		t.Errorf("performed %d merges, want n-k = 36", len(res.Merges))
	}
}

func TestClusterKEqualsNIsIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m, _ := blobs(r, 12, 3, 2, 0.2)
	res, err := Cluster(m, 12, Ward)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range res.Labels {
		if seen[l] {
			t.Fatal("k = n produced a shared cluster")
		}
		seen[l] = true
	}
	if res.SSE(m) > 1e-9 {
		t.Errorf("k = n SSE = %v, want 0", res.SSE(m))
	}
}

func TestWardMergeHeightsMonotone(t *testing.T) {
	// Ward linkage produces (weakly) increasing merge heights on any
	// dataset (it is a reducible linkage).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(30)
		m := linalg.NewMatrix(n, 3)
		for i := 0; i < n; i++ {
			for d := 0; d < 3; d++ {
				m.Set(i, d, r.NormFloat64()*5)
			}
		}
		res, err := Cluster(m, 1, Ward)
		if err != nil {
			return false
		}
		for i := 1; i < len(res.Merges); i++ {
			if res.Merges[i].Height < res.Merges[i-1].Height-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCentroidsMatchManualMeans(t *testing.T) {
	m, err := linalg.FromRows([][]float64{
		{0, 0}, {2, 0}, {100, 100}, {102, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(m, 2, Ward)
	if err != nil {
		t.Fatal(err)
	}
	cents := res.Centroids(m)
	// One centroid near (1,0), the other near (101,100).
	found := 0
	for _, c := range cents {
		if math.Abs(c[0]-1) < 1e-9 && math.Abs(c[1]) < 1e-9 {
			found++
		}
		if math.Abs(c[0]-101) < 1e-9 && math.Abs(c[1]-100) < 1e-9 {
			found++
		}
	}
	if found != 2 {
		t.Errorf("centroids = %v, want (1,0) and (101,100)", cents)
	}
}

func TestSSEDecreasesWithK(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	m, _ := blobs(r, 60, 5, 3, 2.0)
	prev := math.Inf(1)
	for _, k := range []int{2, 4, 8, 16} {
		res, err := Cluster(m, k, Ward)
		if err != nil {
			t.Fatal(err)
		}
		sse := res.SSE(m)
		if sse > prev+1e-9 {
			t.Errorf("SSE rose from %v to %v at k=%d", prev, sse, k)
		}
		prev = sse
	}
}

func TestLinkageString(t *testing.T) {
	for l, want := range map[Linkage]string{
		Ward: "ward", Average: "average", Single: "single", Complete: "complete",
	} {
		if l.String() != want {
			t.Errorf("Linkage(%d).String() = %q, want %q", int(l), l.String(), want)
		}
	}
}

func TestDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	m, _ := blobs(r, 50, 3, 3, 1.0)
	a, err := Cluster(m, 5, Average)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(m, 5, Average)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("hierarchical clustering is non-deterministic")
		}
	}
}
