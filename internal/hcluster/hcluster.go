// Package hcluster implements agglomerative hierarchical clustering with
// the classic Lance-Williams linkage updates (Ward, average, single,
// complete). The paper notes hierarchical clustering (as used by the
// SPEC-characterisation studies it builds on) as a drop-in alternative to
// k-means for grouping colocation scenarios; the analyzer exposes it as a
// selectable method and an ablation compares the two.
package hcluster

import (
	"errors"
	"fmt"
	"math"

	"flare/internal/linalg"
)

// Linkage selects the inter-cluster distance update rule.
type Linkage int

// Linkage rules.
const (
	Ward Linkage = iota + 1 // minimum variance increase (pairs with k-means)
	Average
	Single
	Complete
)

// String names the linkage.
func (l Linkage) String() string {
	switch l {
	case Ward:
		return "ward"
	case Average:
		return "average"
	case Single:
		return "single"
	case Complete:
		return "complete"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Merge records one agglomeration step.
type Merge struct {
	A, B   int     // merged cluster roots (original point indices act as leaves)
	Height float64 // inter-cluster distance at the merge
}

// Result is a clustering cut from the dendrogram.
type Result struct {
	K      int
	Labels []int   // cluster index per observation, 0..K-1
	Sizes  []int   // observations per cluster
	Merges []Merge // the merge sequence actually performed (n-K merges)
}

// Cluster agglomerates the rows of m down to k clusters under the given
// linkage.
func Cluster(m *linalg.Matrix, k int, linkage Linkage) (*Result, error) {
	if m == nil {
		return nil, errors.New("hcluster: nil matrix")
	}
	n := m.Rows()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("hcluster: k = %d outside [1, %d]", k, n)
	}
	if linkage < Ward || linkage > Complete {
		return nil, fmt.Errorf("hcluster: invalid linkage %d", int(linkage))
	}

	// Squared-distance matrix (Lance-Williams for Ward works on squared
	// Euclidean distances; the other linkages are monotone in them).
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		ri := m.Row(i)
		for j := i + 1; j < n; j++ {
			rj := m.Row(j)
			var d float64
			for x := range ri {
				diff := ri[x] - rj[x]
				d += diff * diff
			}
			dist[i][j] = d
			dist[j][i] = d
		}
	}

	active := make([]bool, n)
	size := make([]int, n)
	for i := range active {
		active[i] = true
		size[i] = 1
	}
	// parent chain for final labelling: each point tracks its current root
	// through a union-find-ish parent array.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}

	res := &Result{K: k}
	clusters := n
	for clusters > k {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if dist[i][j] < best {
					bi, bj, best = i, j, dist[i][j]
				}
			}
		}
		// Merge bj into bi.
		res.Merges = append(res.Merges, Merge{A: bi, B: bj, Height: math.Sqrt(best)})
		for x := 0; x < n; x++ {
			if !active[x] || x == bi || x == bj {
				continue
			}
			dist[bi][x] = update(linkage, dist[bi][x], dist[bj][x], dist[bi][bj],
				size[bi], size[bj], size[x])
			dist[x][bi] = dist[bi][x]
		}
		size[bi] += size[bj]
		active[bj] = false
		parent[bj] = bi
		clusters--
	}

	// Compress parents to roots, then densify root ids to 0..K-1.
	rootOf := func(x int) int {
		for parent[x] != x {
			x = parent[x]
		}
		return x
	}
	res.Labels = make([]int, n)
	idOf := make(map[int]int, k)
	for i := 0; i < n; i++ {
		r := rootOf(i)
		id, ok := idOf[r]
		if !ok {
			id = len(idOf)
			idOf[r] = id
		}
		res.Labels[i] = id
	}
	res.Sizes = make([]int, len(idOf))
	for _, l := range res.Labels {
		res.Sizes[l]++
	}
	return res, nil
}

// update applies the Lance-Williams recurrence for d(x, i∪j) given the
// pre-merge squared distances and cluster sizes.
func update(l Linkage, dxi, dxj, dij float64, ni, nj, nx int) float64 {
	switch l {
	case Ward:
		fi := float64(ni + nx)
		fj := float64(nj + nx)
		ft := float64(ni + nj + nx)
		return (fi*dxi + fj*dxj - float64(nx)*dij) / ft
	case Average:
		fi := float64(ni) / float64(ni+nj)
		fj := float64(nj) / float64(ni+nj)
		return fi*dxi + fj*dxj
	case Single:
		return math.Min(dxi, dxj)
	case Complete:
		return math.Max(dxi, dxj)
	default:
		panic(fmt.Sprintf("hcluster: unknown linkage %d", int(l)))
	}
}

// Centroids returns the mean vector of each cluster, compatible with the
// representative-extraction step.
func (r *Result) Centroids(m *linalg.Matrix) [][]float64 {
	dim := m.Cols()
	out := make([][]float64, len(r.Sizes))
	for c := range out {
		out[c] = make([]float64, dim)
	}
	for i, lbl := range r.Labels {
		row := m.Row(i)
		for x, v := range row {
			out[lbl][x] += v
		}
	}
	for c, sz := range r.Sizes {
		if sz == 0 {
			continue
		}
		for x := range out[c] {
			out[c][x] /= float64(sz)
		}
	}
	return out
}

// SSE returns the sum of squared distances of every observation to its
// cluster centroid, comparable with the k-means quality metric.
func (r *Result) SSE(m *linalg.Matrix) float64 {
	cents := r.Centroids(m)
	var sse float64
	for i, lbl := range r.Labels {
		row := m.Row(i)
		for x, v := range row {
			diff := v - cents[lbl][x]
			sse += diff * diff
		}
	}
	return sse
}
