// Package server exposes an analysed FLARE pipeline over HTTP, so
// datacenter engineers can query representatives and request feature
// estimates from dashboards or scripts. Endpoints:
//
//	GET /healthz                       liveness probe
//	GET /api/summary                   pipeline overview
//	GET /api/representatives           representative scenarios + weights
//	GET /api/pcs                       high-level metric interpretations
//	GET /api/scenarios[?job=DC]        the scenario population (optionally filtered)
//	GET /api/estimate?feature=feature1[&job=DC]   impact estimate (cached)
//	GET /api/plan                      portable replay plan
//	GET /api/db/tables                 metric database tables + schemas (with AttachDB)
//	GET /api/db/query?table=samples    metric database rows (paged, filterable)
//	GET /metrics                       Prometheus text exposition
//	GET /api/trace                     recorded span trees (JSON)
//	GET /debug/pprof/                  runtime profiling
//
// All responses are JSON except /metrics and pprof. Every handler is
// wrapped in a telemetry middleware recording a latency histogram and a
// status-code counter. Estimates are memoised per (feature, job); a
// per-key singleflight means concurrent requests for the same estimate
// share one computation while different estimates proceed in parallel.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"

	"flare/internal/core"
	"flare/internal/machine"
	"flare/internal/metricdb"
	"flare/internal/obs"
	"flare/internal/replayer"
)

// Server handles HTTP requests against a completed pipeline.
type Server struct {
	pipeline *core.Pipeline
	features map[string]machine.Feature
	db       *metricdb.DB // optional; set via AttachDB before Handler

	reg    *obs.Registry
	tracer *obs.Tracer

	// Logger, when set before Handler is called, receives one line per
	// request from the telemetry middleware.
	Logger *log.Logger

	mu    sync.Mutex
	cache map[string]*estimateEntry
}

// New creates a server over a pipeline that has completed Profile and
// Analyze, exposing the given features for estimation. Telemetry goes to
// the process-default registry; use NewWithTelemetry to isolate it.
func New(p *core.Pipeline, features []machine.Feature) (*Server, error) {
	return NewWithTelemetry(p, features, obs.Default(), nil)
}

// NewWithTelemetry is New with an explicit metrics registry and tracer.
// A nil tracer gets a fresh one observing into reg; passing the tracer
// the pipeline was built under makes its build spans visible at
// /api/trace.
func NewWithTelemetry(p *core.Pipeline, features []machine.Feature,
	reg *obs.Registry, tracer *obs.Tracer) (*Server, error) {
	if p == nil || p.Analysis() == nil {
		return nil, errors.New("server: pipeline must be analysed before serving")
	}
	if reg == nil {
		reg = obs.Default()
	}
	if tracer == nil {
		tracer = obs.NewTracer(reg)
	}
	s := &Server{
		pipeline: p,
		features: make(map[string]machine.Feature, len(features)),
		reg:      reg,
		tracer:   tracer,
		cache:    make(map[string]*estimateEntry),
	}
	for _, f := range features {
		if _, dup := s.features[f.Name]; dup {
			return nil, fmt.Errorf("server: duplicate feature %q", f.Name)
		}
		s.features[f.Name] = f
	}
	return s, nil
}

// Registry returns the registry the server records telemetry into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Tracer returns the tracer estimate computations record spans into.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Handler returns the server's routing mux. Every route, including the
// pprof surface, runs behind the telemetry middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	route("/healthz", s.handleHealth)
	route("/api/summary", s.handleSummary)
	route("/api/representatives", s.handleRepresentatives)
	route("/api/pcs", s.handlePCs)
	route("/api/scenarios", s.handleScenarios)
	route("/api/estimate", s.handleEstimate)
	route("/api/plan", s.handlePlan)
	route("/api/db/tables", s.handleDBTables)
	route("/api/db/query", s.handleDBQuery)
	route("/metrics", s.handleMetrics)
	route("/api/trace", s.handleTrace)
	route("/debug/pprof/", pprof.Index)
	route("/debug/pprof/cmdline", pprof.Cmdline)
	route("/debug/pprof/profile", pprof.Profile)
	route("/debug/pprof/symbol", pprof.Symbol)
	route("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleMetrics serves the registry in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Write errors past this point mean a dropped connection; nothing to
	// report to the client.
	_ = s.reg.WritePrometheus(w)
}

// handleTrace serves the tracer's retained root span trees.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, s.tracer.Snapshot())
}

// handlePlan serves the portable replay plan (representatives + weights +
// fallbacks) for downstream testbeds.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	plan, err := replayer.NewPlan(s.pipeline.Analysis(), s.pipeline.Machine().Shape)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building plan: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, plan)
}

// writeJSON emits a JSON response.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header cannot be reported to the client;
	// the connection will just break.
	_ = json.NewEncoder(w).Encode(v)
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// requireGet guards non-GET methods.
func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// summaryResponse describes the analysed pipeline.
type summaryResponse struct {
	Scenarios       int      `json:"scenarios"`
	RawMetrics      int      `json:"raw_metrics"`
	RefinedMetrics  int      `json:"refined_metrics"`
	PrincipalComps  int      `json:"principal_components"`
	Clusters        int      `json:"clusters"`
	MachineShape    string   `json:"machine_shape"`
	Features        []string `json:"features"`
	Representatives int      `json:"representatives"`
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	an := s.pipeline.Analysis()
	names := make([]string, 0, len(s.features))
	for name := range s.features {
		names = append(names, name)
	}
	sortStrings(names)
	writeJSON(w, http.StatusOK, summaryResponse{
		Scenarios:       an.Dataset.Scenarios.Len(),
		RawMetrics:      an.Dataset.Catalog.Len(),
		RefinedMetrics:  len(an.RefinedNames),
		PrincipalComps:  an.PCA.NumPC,
		Clusters:        an.Clustering.K,
		MachineShape:    s.pipeline.Machine().Shape.Name,
		Features:        names,
		Representatives: len(an.Representatives),
	})
}

// representativeResponse is one representative scenario.
type representativeResponse struct {
	Cluster    int     `json:"cluster"`
	ScenarioID int     `json:"scenario_id"`
	Key        string  `json:"key"`
	WeightPct  float64 `json:"weight_pct"`
	Members    int     `json:"members"`
}

func (s *Server) handleRepresentatives(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	an := s.pipeline.Analysis()
	out := make([]representativeResponse, 0, len(an.Representatives))
	for _, rep := range an.Representatives {
		sc, err := an.Dataset.Scenarios.Get(rep.ScenarioID)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "resolving scenario %d: %v", rep.ScenarioID, err)
			return
		}
		out = append(out, representativeResponse{
			Cluster:    rep.Cluster,
			ScenarioID: rep.ScenarioID,
			Key:        sc.Key(),
			WeightPct:  100 * rep.Weight,
			Members:    len(rep.Ranked),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// pcResponse is one high-level metric interpretation.
type pcResponse struct {
	Index          int     `json:"index"`
	ExplainedPct   float64 `json:"explained_pct"`
	Interpretation string  `json:"interpretation"`
}

func (s *Server) handlePCs(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	an := s.pipeline.Analysis()
	out := make([]pcResponse, 0, len(an.Labels))
	for _, lbl := range an.Labels {
		out = append(out, pcResponse{
			Index:          lbl.Index,
			ExplainedPct:   100 * lbl.Explained,
			Interpretation: lbl.Interpretation,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// scenarioResponse is one colocation scenario.
type scenarioResponse struct {
	ID        int    `json:"id"`
	Key       string `json:"key"`
	Instances int    `json:"instances"`
	VCPUs     int    `json:"vcpus"`
	Cluster   int    `json:"cluster"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	job := r.URL.Query().Get("job")
	an := s.pipeline.Analysis()
	var out []scenarioResponse
	for _, sc := range an.Dataset.Scenarios.All() {
		if job != "" && !sc.HasJob(job) {
			continue
		}
		out = append(out, scenarioResponse{
			ID:        sc.ID,
			Key:       sc.Key(),
			Instances: sc.TotalInstances(),
			VCPUs:     sc.VCPUs(),
			Cluster:   an.Clustering.Labels[sc.ID],
		})
	}
	if job != "" && len(out) == 0 {
		writeError(w, http.StatusNotFound, "no scenario contains job %q", job)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// estimateResponse is a feature-impact estimate.
type estimateResponse struct {
	Feature           string  `json:"feature"`
	Description       string  `json:"description"`
	Job               string  `json:"job,omitempty"`
	ReductionPct      float64 `json:"mips_reduction_pct"`
	ScenariosReplayed int     `json:"scenarios_replayed"`
}

// estimateEntry is one singleflight cache slot. The first request for a
// key computes inside the sync.Once while later requests for the same key
// block only on that Once — requests for *different* keys never contend,
// unlike the previous design that held one server-wide mutex across the
// whole replay computation.
type estimateEntry struct {
	once   sync.Once
	resp   estimateResponse
	status int    // non-200 when the computation failed
	errMsg string // set when the computation failed
}

func (e *estimateEntry) compute(s *Server, feat machine.Feature, job string) {
	ctx := obs.WithTracer(context.Background(), s.tracer)
	ctx, span := obs.StartSpan(ctx, "server.estimate")
	defer span.End()
	span.SetAttr("feature", feat.Name)
	if job != "" {
		span.SetAttr("job", job)
	}

	e.status = http.StatusOK
	e.resp = estimateResponse{Feature: feat.Name, Description: feat.Description, Job: job}
	if job == "" {
		est, err := s.pipeline.EvaluateFeatureContext(ctx, feat)
		if err != nil {
			e.status = http.StatusInternalServerError
			e.errMsg = fmt.Sprintf("estimation failed: %v", err)
			return
		}
		e.resp.ReductionPct = est.ReductionPct
		e.resp.ScenariosReplayed = est.ScenariosReplayed
	} else {
		est, err := s.pipeline.EvaluateFeatureForJobContext(ctx, feat, job)
		if err != nil {
			e.status = http.StatusBadRequest
			e.errMsg = fmt.Sprintf("estimation failed: %v", err)
			return
		}
		e.resp.ReductionPct = est.ReductionPct
		e.resp.ScenariosReplayed = est.ScenariosReplayed
	}
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	featName := r.URL.Query().Get("feature")
	if featName == "" {
		writeError(w, http.StatusBadRequest, "missing feature parameter")
		return
	}
	feat, ok := s.features[featName]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown feature %q", featName)
		return
	}
	job := r.URL.Query().Get("job")

	key := featName + "|" + job
	s.mu.Lock()
	entry, hit := s.cache[key]
	if !hit {
		entry = &estimateEntry{}
		s.cache[key] = entry
	}
	s.mu.Unlock()
	result := "miss"
	if hit {
		result = "hit"
	}
	s.reg.Counter("flare_estimate_cache_total",
		"estimate cache lookups (a hit may still wait on an in-flight computation)",
		"result", result).Inc()

	entry.once.Do(func() { entry.compute(s, feat, job) })

	if entry.errMsg != "" {
		// Failed computations are not cached: evict the entry (only if it
		// is still the one we joined — a fresh retry may have replaced it)
		// so a later request can retry.
		s.mu.Lock()
		if s.cache[key] == entry {
			delete(s.cache, key)
		}
		s.mu.Unlock()
		writeError(w, entry.status, "%s", entry.errMsg)
		return
	}
	writeJSON(w, http.StatusOK, entry.resp)
}

func sortStrings(xs []string) { sort.Strings(xs) }
