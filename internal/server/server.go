// Package server exposes an analysed FLARE pipeline over HTTP, so
// datacenter engineers can query representatives and request feature
// estimates from dashboards or scripts. Endpoints:
//
//	GET /healthz                       liveness probe
//	GET /api/summary                   pipeline overview
//	GET /api/representatives           representative scenarios + weights
//	GET /api/pcs                       high-level metric interpretations
//	GET /api/scenarios[?job=DC]        the scenario population (optionally filtered)
//	GET /api/estimate?feature=feature1[&job=DC]   impact estimate (cached)
//
// All responses are JSON. Estimates are memoised per (feature, job) and
// safe under concurrent requests.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"flare/internal/core"
	"flare/internal/machine"
	"flare/internal/replayer"
)

// Server handles HTTP requests against a completed pipeline.
type Server struct {
	pipeline *core.Pipeline
	features map[string]machine.Feature

	mu    sync.Mutex
	cache map[string]estimateResponse
}

// New creates a server over a pipeline that has completed Profile and
// Analyze, exposing the given features for estimation.
func New(p *core.Pipeline, features []machine.Feature) (*Server, error) {
	if p == nil || p.Analysis() == nil {
		return nil, errors.New("server: pipeline must be analysed before serving")
	}
	s := &Server{
		pipeline: p,
		features: make(map[string]machine.Feature, len(features)),
		cache:    make(map[string]estimateResponse),
	}
	for _, f := range features {
		if _, dup := s.features[f.Name]; dup {
			return nil, fmt.Errorf("server: duplicate feature %q", f.Name)
		}
		s.features[f.Name] = f
	}
	return s, nil
}

// Handler returns the server's routing mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/api/summary", s.handleSummary)
	mux.HandleFunc("/api/representatives", s.handleRepresentatives)
	mux.HandleFunc("/api/pcs", s.handlePCs)
	mux.HandleFunc("/api/scenarios", s.handleScenarios)
	mux.HandleFunc("/api/estimate", s.handleEstimate)
	mux.HandleFunc("/api/plan", s.handlePlan)
	return mux
}

// handlePlan serves the portable replay plan (representatives + weights +
// fallbacks) for downstream testbeds.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	plan, err := replayer.NewPlan(s.pipeline.Analysis(), s.pipeline.Machine().Shape)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building plan: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, plan)
}

// writeJSON emits a JSON response.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header cannot be reported to the client;
	// the connection will just break.
	_ = json.NewEncoder(w).Encode(v)
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// requireGet guards non-GET methods.
func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// summaryResponse describes the analysed pipeline.
type summaryResponse struct {
	Scenarios       int      `json:"scenarios"`
	RawMetrics      int      `json:"raw_metrics"`
	RefinedMetrics  int      `json:"refined_metrics"`
	PrincipalComps  int      `json:"principal_components"`
	Clusters        int      `json:"clusters"`
	MachineShape    string   `json:"machine_shape"`
	Features        []string `json:"features"`
	Representatives int      `json:"representatives"`
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	an := s.pipeline.Analysis()
	names := make([]string, 0, len(s.features))
	for name := range s.features {
		names = append(names, name)
	}
	sortStrings(names)
	writeJSON(w, http.StatusOK, summaryResponse{
		Scenarios:       an.Dataset.Scenarios.Len(),
		RawMetrics:      an.Dataset.Catalog.Len(),
		RefinedMetrics:  len(an.RefinedNames),
		PrincipalComps:  an.PCA.NumPC,
		Clusters:        an.Clustering.K,
		MachineShape:    s.pipeline.Machine().Shape.Name,
		Features:        names,
		Representatives: len(an.Representatives),
	})
}

// representativeResponse is one representative scenario.
type representativeResponse struct {
	Cluster    int     `json:"cluster"`
	ScenarioID int     `json:"scenario_id"`
	Key        string  `json:"key"`
	WeightPct  float64 `json:"weight_pct"`
	Members    int     `json:"members"`
}

func (s *Server) handleRepresentatives(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	an := s.pipeline.Analysis()
	out := make([]representativeResponse, 0, len(an.Representatives))
	for _, rep := range an.Representatives {
		sc, err := an.Dataset.Scenarios.Get(rep.ScenarioID)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "resolving scenario %d: %v", rep.ScenarioID, err)
			return
		}
		out = append(out, representativeResponse{
			Cluster:    rep.Cluster,
			ScenarioID: rep.ScenarioID,
			Key:        sc.Key(),
			WeightPct:  100 * rep.Weight,
			Members:    len(rep.Ranked),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// pcResponse is one high-level metric interpretation.
type pcResponse struct {
	Index          int     `json:"index"`
	ExplainedPct   float64 `json:"explained_pct"`
	Interpretation string  `json:"interpretation"`
}

func (s *Server) handlePCs(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	an := s.pipeline.Analysis()
	out := make([]pcResponse, 0, len(an.Labels))
	for _, lbl := range an.Labels {
		out = append(out, pcResponse{
			Index:          lbl.Index,
			ExplainedPct:   100 * lbl.Explained,
			Interpretation: lbl.Interpretation,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// scenarioResponse is one colocation scenario.
type scenarioResponse struct {
	ID        int    `json:"id"`
	Key       string `json:"key"`
	Instances int    `json:"instances"`
	VCPUs     int    `json:"vcpus"`
	Cluster   int    `json:"cluster"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	job := r.URL.Query().Get("job")
	an := s.pipeline.Analysis()
	var out []scenarioResponse
	for _, sc := range an.Dataset.Scenarios.All() {
		if job != "" && !sc.HasJob(job) {
			continue
		}
		out = append(out, scenarioResponse{
			ID:        sc.ID,
			Key:       sc.Key(),
			Instances: sc.TotalInstances(),
			VCPUs:     sc.VCPUs(),
			Cluster:   an.Clustering.Labels[sc.ID],
		})
	}
	if job != "" && len(out) == 0 {
		writeError(w, http.StatusNotFound, "no scenario contains job %q", job)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// estimateResponse is a feature-impact estimate.
type estimateResponse struct {
	Feature           string  `json:"feature"`
	Description       string  `json:"description"`
	Job               string  `json:"job,omitempty"`
	ReductionPct      float64 `json:"mips_reduction_pct"`
	ScenariosReplayed int     `json:"scenarios_replayed"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	featName := r.URL.Query().Get("feature")
	if featName == "" {
		writeError(w, http.StatusBadRequest, "missing feature parameter")
		return
	}
	feat, ok := s.features[featName]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown feature %q", featName)
		return
	}
	job := r.URL.Query().Get("job")

	key := featName + "|" + job
	s.mu.Lock()
	cached, hit := s.cache[key]
	s.mu.Unlock()
	if hit {
		writeJSON(w, http.StatusOK, cached)
		return
	}

	resp := estimateResponse{Feature: feat.Name, Description: feat.Description, Job: job}
	if job == "" {
		est, err := s.pipeline.EvaluateFeature(feat)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "estimation failed: %v", err)
			return
		}
		resp.ReductionPct = est.ReductionPct
		resp.ScenariosReplayed = est.ScenariosReplayed
	} else {
		est, err := s.pipeline.EvaluateFeatureForJob(feat, job)
		if err != nil {
			writeError(w, http.StatusBadRequest, "estimation failed: %v", err)
			return
		}
		resp.ReductionPct = est.ReductionPct
		resp.ScenariosReplayed = est.ScenariosReplayed
	}

	s.mu.Lock()
	s.cache[key] = resp
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func sortStrings(xs []string) { sort.Strings(xs) }
