// Package server exposes an analysed FLARE pipeline over HTTP, so
// datacenter engineers can query representatives and request feature
// estimates from dashboards or scripts. Endpoints:
//
//	GET /healthz                       liveness probe
//	GET /api/summary                   pipeline overview
//	GET /api/representatives           representative scenarios + weights
//	GET /api/pcs                       high-level metric interpretations
//	GET /api/scenarios[?job=DC]        the scenario population (optionally filtered)
//	GET /api/estimate?feature=feature1[&job=DC]   impact estimate (cached)
//	POST /api/tick                     fold a datacenter tick into the pipeline
//	GET /api/plan                      portable replay plan
//	GET /api/db/tables                 metric database tables + schemas (with AttachDB)
//	GET /api/db/query?table=samples    metric database rows (paged, filterable)
//	GET /metrics                       Prometheus text exposition
//	GET /api/trace                     recorded span trees (JSON)
//	GET /debug/pprof/                  runtime profiling
//
// All responses are JSON except /metrics and pprof. Every handler is
// wrapped in a telemetry middleware recording a latency histogram and a
// status-code counter. Estimates are memoised per (feature, job); a
// per-key singleflight means concurrent requests for the same estimate
// share one computation while different estimates proceed in parallel.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"flare/internal/core"
	"flare/internal/machine"
	"flare/internal/metricdb"
	"flare/internal/obs"
	"flare/internal/replayer"
)

// Server handles HTTP requests against a completed pipeline.
type Server struct {
	pipeline *core.Pipeline
	features map[string]machine.Feature
	db       *metricdb.DB // optional; set via AttachDB before Handler

	reg    *obs.Registry
	tracer *obs.Tracer

	// Logger, when set before Handler is called, receives one line per
	// request from the telemetry middleware. Deprecated shim: new code
	// should use SetLogger with a structured *obs.Logger instead.
	Logger *log.Logger

	logger   *obs.Logger    // structured wide events; nil is safe
	slo      *sloTracker    // windowed SLO state behind /api/health
	exporter *traceExporter // durable trace/event export; nil = disabled
	reqBase  string         // request-ID prefix, unique per process start
	reqSeq   atomic.Uint64  // request-ID sequence

	opts Options       // resilience settings; see SetResilience
	sem  chan struct{} // concurrency limiter; nil = unlimited

	cluster *coordinator // nil = single-node; see EnableCluster

	// pmu guards the pipeline: read handlers and estimate computations
	// hold it shared, while /api/tick holds it exclusively to fold a
	// datacenter tick into the dataset and analysis in place.
	pmu sync.RWMutex

	mu       sync.Mutex
	cache    map[string]*estimateEntry
	lastGood map[string]estimateResponse // per key, last journaled estimate
}

// New creates a server over a pipeline that has completed Profile and
// Analyze, exposing the given features for estimation. Telemetry goes to
// the process-default registry; use NewWithTelemetry to isolate it.
func New(p *core.Pipeline, features []machine.Feature) (*Server, error) {
	return NewWithTelemetry(p, features, obs.Default(), nil)
}

// NewWithTelemetry is New with an explicit metrics registry and tracer.
// A nil tracer gets a fresh one observing into reg; passing the tracer
// the pipeline was built under makes its build spans visible at
// /api/trace.
func NewWithTelemetry(p *core.Pipeline, features []machine.Feature,
	reg *obs.Registry, tracer *obs.Tracer) (*Server, error) {
	if p == nil || p.Analysis() == nil {
		return nil, errors.New("server: pipeline must be analysed before serving")
	}
	if reg == nil {
		reg = obs.Default()
	}
	if tracer == nil {
		tracer = obs.NewTracer(reg)
	}
	s := &Server{
		pipeline: p,
		features: make(map[string]machine.Feature, len(features)),
		reg:      reg,
		tracer:   tracer,
		reqBase:  strconv.FormatInt(time.Now().UnixMilli(), 36),
		cache:    make(map[string]*estimateEntry),
		lastGood: make(map[string]estimateResponse),
	}
	s.slo = newSLOTracker(reg, SLOOptions{})
	for _, f := range features {
		if _, dup := s.features[f.Name]; dup {
			return nil, fmt.Errorf("server: duplicate feature %q", f.Name)
		}
		s.features[f.Name] = f
	}
	s.SetResilience(Options{})
	return s, nil
}

// Registry returns the registry the server records telemetry into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Tracer returns the tracer estimate computations record spans into.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// SetLogger installs the structured logger the middleware emits wide
// events through (and propagates to handlers via the request context).
// Call before Handler; a nil logger disables structured logging.
func (s *Server) SetLogger(l *obs.Logger) { s.logger = l }

// SetSLO replaces the SLO tracker's configuration. Call before serving.
func (s *Server) SetSLO(opts SLOOptions) { s.slo = newSLOTracker(s.reg, opts) }

// EventHook returns a LoggerOptions.Hook that journals every emitted
// log event into the durable events table. It is safe to install before
// EnableTraceExport is called (events are simply not exported until it
// is) and must stay cheap: it only enqueues.
func (s *Server) EventHook() func(obs.Event) {
	return func(ev obs.Event) {
		if e := s.exporter; e != nil {
			e.enqueueEvent(ev)
		}
	}
}

// EnableTraceExport starts durable wide-event export into db (creating
// the request_traces / request_events tables when absent). With a
// store-backed db the history survives restarts and /api/trace?page=N
// serves it. Call before Handler.
func (s *Server) EnableTraceExport(db *metricdb.DB, opts ExportOptions) error {
	e, err := newTraceExporter(db, s.reg, opts)
	if err != nil {
		return err
	}
	s.exporter = e
	return nil
}

// FlushTelemetry blocks until every export record enqueued so far is
// applied — tests and graceful shutdown use it to make export state
// observable.
func (s *Server) FlushTelemetry() {
	if s.exporter != nil {
		s.exporter.Flush()
	}
}

// CloseTelemetry drains and stops the exporter. The server must not
// serve traced requests afterwards.
func (s *Server) CloseTelemetry() {
	if s.exporter != nil {
		s.exporter.Close()
		s.exporter = nil
	}
}

// Handler returns the server's routing mux. Every route, including the
// pprof surface, runs behind the telemetry middleware; /api routes
// additionally run behind the concurrency limiter (when configured),
// while /healthz and /metrics stay exempt so probes and scrapes always
// get through during overload.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	api := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, s.limit(pattern, h)))
	}
	route("/healthz", s.handleHealth)
	route("/api/health", s.handleSLOHealth)
	api("/api/summary", s.handleSummary)
	api("/api/representatives", s.handleRepresentatives)
	api("/api/pcs", s.handlePCs)
	api("/api/scenarios", s.handleScenarios)
	api("/api/estimate", s.handleEstimate)
	api("/api/estimate/batch", s.handleEstimateBatch)
	api("/api/tick", s.handleTick)
	api("/api/plan", s.handlePlan)
	api("/api/db/tables", s.handleDBTables)
	api("/api/db/query", s.handleDBQuery)
	route("/metrics", s.handleMetrics)
	api("/api/trace", s.handleTrace)
	route("/debug/pprof/", pprof.Index)
	route("/debug/pprof/cmdline", pprof.Cmdline)
	route("/debug/pprof/profile", pprof.Profile)
	route("/debug/pprof/symbol", pprof.Symbol)
	route("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleMetrics serves the registry in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	// Refresh the flare_slo_* gauges so every scrape (and flare-top poll)
	// sees current-window values, not the last /api/health evaluation.
	s.slo.evaluate(s.breakerState())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Write errors past this point mean a dropped connection; nothing to
	// report to the client.
	_ = s.reg.WritePrometheus(w)
}

// tracePage is one page of durable request-trace history.
type tracePage struct {
	Page     int          `json:"page"`
	PageSize int          `json:"page_size"`
	Total    int          `json:"total"`
	Traces   []traceEntry `json:"traces"`
}

// traceEntry is one exported request trace.
type traceEntry struct {
	ID          string          `json:"id"`
	Route       string          `json:"route"`
	Method      string          `json:"method"`
	Status      int             `json:"status"`
	DurationMs  float64         `json:"duration_ms"`
	StartUnixMs int64           `json:"start_unix_ms"`
	Trace       json.RawMessage `json:"trace"`
}

const (
	traceDefaultPageSize = 20
	traceMaxPageSize     = 500
)

// handleTrace serves traces. Without parameters it answers with the
// tracer's live in-memory ring (the historical behaviour). With
// ?page=N[&page_size=M] it pages through the durable request-trace
// history newest-first — which, with a store-backed database, spans
// server restarts.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	q := r.URL.Query()
	if q.Get("page") == "" {
		writeJSON(w, http.StatusOK, s.tracer.Snapshot())
		return
	}
	if s.exporter == nil {
		writeError(w, http.StatusNotFound, "trace export not enabled (start flare-server with -db-dir)")
		return
	}
	page, err := intParam(q.Get("page"), 0)
	if err != nil || page < 0 {
		writeError(w, http.StatusBadRequest, "bad page %q", q.Get("page"))
		return
	}
	size, err := intParam(q.Get("page_size"), traceDefaultPageSize)
	if err != nil || size <= 0 {
		writeError(w, http.StatusBadRequest, "bad page_size %q", q.Get("page_size"))
		return
	}
	if size > traceMaxPageSize {
		size = traceMaxPageSize
	}
	rows := s.exporter.traces.Select(nil) // insertion order: oldest first
	resp := tracePage{Page: page, PageSize: size, Total: len(rows), Traces: make([]traceEntry, 0, size)}
	// Page 0 is the newest traces: walk the rows backwards.
	start := len(rows) - 1 - page*size
	for i := start; i >= 0 && i > start-size; i-- {
		row := rows[i]
		entry := traceEntry{
			ID:          row[0].S,
			Route:       row[1].S,
			Method:      row[2].S,
			Status:      int(row[3].I),
			DurationMs:  row[4].F,
			StartUnixMs: row[5].I,
			Trace:       json.RawMessage(row[6].S),
		}
		if !json.Valid(entry.Trace) {
			entry.Trace = json.RawMessage(`{}`)
		}
		resp.Traces = append(resp.Traces, entry)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePlan serves the portable replay plan (representatives + weights +
// fallbacks) for downstream testbeds.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	s.pmu.RLock()
	plan, err := replayer.NewPlan(s.pipeline.Analysis(), s.pipeline.Machine().Shape)
	s.pmu.RUnlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building plan: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, plan)
}

// writeJSON emits a JSON response.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header cannot be reported to the client;
	// the connection will just break.
	_ = json.NewEncoder(w).Encode(v)
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// requireGet guards non-GET methods.
func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// summaryResponse describes the analysed pipeline.
type summaryResponse struct {
	Scenarios       int      `json:"scenarios"`
	RawMetrics      int      `json:"raw_metrics"`
	RefinedMetrics  int      `json:"refined_metrics"`
	PrincipalComps  int      `json:"principal_components"`
	Clusters        int      `json:"clusters"`
	MachineShape    string   `json:"machine_shape"`
	Features        []string `json:"features"`
	Representatives int      `json:"representatives"`
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	names := make([]string, 0, len(s.features))
	for name := range s.features {
		names = append(names, name)
	}
	sort.Strings(names)
	s.pmu.RLock()
	an := s.pipeline.Analysis()
	resp := summaryResponse{
		Scenarios:       an.Dataset.Scenarios.Len(),
		RawMetrics:      an.Dataset.Catalog.Len(),
		RefinedMetrics:  len(an.RefinedNames),
		PrincipalComps:  an.PCA.NumPC,
		Clusters:        an.Clustering.K,
		MachineShape:    s.pipeline.Machine().Shape.Name,
		Features:        names,
		Representatives: len(an.Representatives),
	}
	s.pmu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

// representativeResponse is one representative scenario.
type representativeResponse struct {
	Cluster    int     `json:"cluster"`
	ScenarioID int     `json:"scenario_id"`
	Key        string  `json:"key"`
	WeightPct  float64 `json:"weight_pct"`
	Members    int     `json:"members"`
}

func (s *Server) handleRepresentatives(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	s.pmu.RLock()
	an := s.pipeline.Analysis()
	out := make([]representativeResponse, 0, len(an.Representatives))
	for _, rep := range an.Representatives {
		sc, err := an.Dataset.Scenarios.Get(rep.ScenarioID)
		if err != nil {
			s.pmu.RUnlock()
			writeError(w, http.StatusInternalServerError, "resolving scenario %d: %v", rep.ScenarioID, err)
			return
		}
		out = append(out, representativeResponse{
			Cluster:    rep.Cluster,
			ScenarioID: rep.ScenarioID,
			Key:        sc.Key(),
			WeightPct:  100 * rep.Weight,
			Members:    len(rep.Ranked),
		})
	}
	s.pmu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

// pcResponse is one high-level metric interpretation.
type pcResponse struct {
	Index          int     `json:"index"`
	ExplainedPct   float64 `json:"explained_pct"`
	Interpretation string  `json:"interpretation"`
}

func (s *Server) handlePCs(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	s.pmu.RLock()
	an := s.pipeline.Analysis()
	out := make([]pcResponse, 0, len(an.Labels))
	for _, lbl := range an.Labels {
		out = append(out, pcResponse{
			Index:          lbl.Index,
			ExplainedPct:   100 * lbl.Explained,
			Interpretation: lbl.Interpretation,
		})
	}
	s.pmu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

// scenarioResponse is one colocation scenario.
type scenarioResponse struct {
	ID        int    `json:"id"`
	Key       string `json:"key"`
	Instances int    `json:"instances"`
	VCPUs     int    `json:"vcpus"`
	Cluster   int    `json:"cluster"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	job := r.URL.Query().Get("job")
	s.pmu.RLock()
	an := s.pipeline.Analysis()
	var out []scenarioResponse
	for _, sc := range an.Dataset.Scenarios.All() {
		if job != "" && !sc.HasJob(job) {
			continue
		}
		out = append(out, scenarioResponse{
			ID:        sc.ID,
			Key:       sc.Key(),
			Instances: sc.TotalInstances(),
			VCPUs:     sc.VCPUs(),
			Cluster:   an.Clustering.Labels[sc.ID],
		})
	}
	s.pmu.RUnlock()
	if job != "" && len(out) == 0 {
		writeError(w, http.StatusNotFound, "no scenario contains job %q", job)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// estimateResponse is a feature-impact estimate. Degraded marks a
// response served from the last successfully journaled estimate because
// the store is currently unhealthy.
type estimateResponse struct {
	Feature           string  `json:"feature"`
	Description       string  `json:"description"`
	Job               string  `json:"job,omitempty"`
	ReductionPct      float64 `json:"mips_reduction_pct"`
	ScenariosReplayed int     `json:"scenarios_replayed"`
	Degraded          bool    `json:"degraded,omitempty"`
}

// estimateEntry is one singleflight cache slot. The first request for a
// key creates the entry and spawns the computation; every request for
// the key (including the creator) then waits on done — with a deadline
// when Options.RequestTimeout is set, so a wedged computation turns into
// a bounded 503 instead of an unbounded hang. Requests for *different*
// keys never contend.
type estimateEntry struct {
	done       chan struct{} // closed when compute finishes
	computedAt time.Time     // staleness reference for EstimateRefresh
	resp       estimateResponse
	status     int    // non-200 when the computation failed
	errMsg     string // set when the computation failed
	evict      bool   // entry must not stay cached (failure or degraded)
	retryAfter bool   // stamp Retry-After on the error response
}

// compute runs the estimate, journals it, and resolves the entry. It
// runs once per entry in its own goroutine; the entry is evicted here
// (not by waiters) so cleanup happens even when every waiter times out.
func (e *estimateEntry) compute(s *Server, feat machine.Feature, job, key string) {
	defer close(e.done)
	defer func() {
		if e.evict {
			s.mu.Lock()
			if s.cache[key] == e {
				delete(s.cache, key)
			}
			s.mu.Unlock()
		}
	}()
	ctx := obs.WithTracer(context.Background(), s.tracer)
	ctx, span := obs.StartSpan(ctx, "server.estimate")
	defer span.End()
	span.SetAttr("feature", feat.Name)
	if job != "" {
		span.SetAttr("job", job)
	}

	e.status = http.StatusOK
	e.resp = estimateResponse{Feature: feat.Name, Description: feat.Description, Job: job}

	// The store's health gates fresh estimates: while the breaker is open
	// the journal is known-bad, so skip straight to degraded service.
	if err := s.opts.Breaker.Allow(); err != nil {
		s.degrade(e, key, "store circuit open")
		return
	}
	// Injected faults on the estimate path itself (latency faults here
	// exercise RequestTimeout).
	if err := s.opts.Injector.Err("server.estimate"); err != nil {
		e.evict = true
		e.status = http.StatusInternalServerError
		e.errMsg = fmt.Sprintf("estimation failed: %v", err)
		return
	}
	if job == "" {
		s.pmu.RLock()
		est, err := s.pipeline.EvaluateFeatureContext(ctx, feat)
		s.pmu.RUnlock()
		if err != nil {
			e.evict = true
			e.status = http.StatusInternalServerError
			e.errMsg = fmt.Sprintf("estimation failed: %v", err)
			return
		}
		e.resp.ReductionPct = est.ReductionPct
		e.resp.ScenariosReplayed = est.ScenariosReplayed
	} else {
		s.pmu.RLock()
		est, err := s.pipeline.EvaluateFeatureForJobContext(ctx, feat, job)
		s.pmu.RUnlock()
		if err != nil {
			e.evict = true
			e.status = http.StatusBadRequest
			e.errMsg = fmt.Sprintf("estimation failed: %v", err)
			return
		}
		e.resp.ReductionPct = est.ReductionPct
		e.resp.ScenariosReplayed = est.ScenariosReplayed
	}

	// Journal the estimate; persistence failures feed the breaker and
	// degrade the response rather than erroring — an estimate the server
	// cannot audit is served from last-known-good instead.
	perr := s.persistEstimate(e.resp)
	s.opts.Breaker.Record(perr)
	if perr != nil {
		s.degrade(e, key, "journaling estimate failed")
		return
	}
	e.computedAt = time.Now()
	s.mu.Lock()
	s.lastGood[key] = e.resp
	s.mu.Unlock()
}

// lookupEstimate resolves the singleflight cache slot for (feat, job),
// creating the entry and spawning its computation on a miss or when
// the cached result has aged past EstimateRefresh. Callers wait on the
// returned entry's done channel.
func (s *Server) lookupEstimate(feat machine.Feature, job string) *estimateEntry {
	key := feat.Name + "|" + job
	s.mu.Lock()
	entry, hit := s.cache[key]
	result := "miss"
	switch {
	case hit && s.opts.EstimateRefresh > 0 && entry.finished() &&
		time.Since(entry.computedAt) > s.opts.EstimateRefresh:
		// Stale: recompute. Unfinished entries are never stale — joining
		// the in-flight computation is always right.
		hit = false
		result = "stale"
	case hit:
		result = "hit"
	}
	if !hit {
		entry = &estimateEntry{done: make(chan struct{})}
		s.cache[key] = entry
		go entry.compute(s, feat, job, key)
	}
	s.mu.Unlock()
	s.reg.Counter("flare_estimate_cache_total",
		"estimate cache lookups (a hit may still wait on an in-flight computation)",
		"result", result).Inc()
	return entry
}

// finished reports whether the entry's computation has resolved.
func (e *estimateEntry) finished() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	featName := r.URL.Query().Get("feature")
	if featName == "" {
		writeError(w, http.StatusBadRequest, "missing feature parameter")
		return
	}
	feat, ok := s.features[featName]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown feature %q", featName)
		return
	}
	job := r.URL.Query().Get("job")

	// Cluster routing: when a peer owns this feature, relay its response
	// verbatim. Failed forwards fall through to the local path below —
	// deterministic pipelines make the fallback bytes identical.
	if body, ok := s.forwardEstimate(r, featName, job); ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
		return
	}

	entry := s.lookupEstimate(feat, job)
	if s.opts.RequestTimeout > 0 {
		timer := time.NewTimer(s.opts.RequestTimeout)
		defer timer.Stop()
		select {
		case <-entry.done:
		case <-timer.C:
			s.reg.Counter("flare_request_timeouts_total",
				"estimate requests that hit RequestTimeout while waiting",
				"route", "/api/estimate").Inc()
			retryAfterHeader(w, s.opts.RequestTimeout)
			writeError(w, http.StatusServiceUnavailable,
				"estimate still computing after %s; retry later", s.opts.RequestTimeout)
			return
		}
	} else {
		<-entry.done
	}

	if entry.errMsg != "" {
		if entry.retryAfter {
			retryAfterHeader(w, time.Second)
		}
		writeError(w, entry.status, "%s", entry.errMsg)
		return
	}
	s.countDegraded(entry.resp)
	writeJSON(w, http.StatusOK, entry.resp)
}
