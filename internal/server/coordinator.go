// Cluster coordinator for the estimate surface. Every node runs the
// same analysed pipeline, so any node *can* answer any estimate — the
// ring exists for cache locality, not correctness: routing a feature to
// its owning shard means one node's singleflight cache (and journal)
// absorbs all traffic for that feature instead of every node computing
// it independently. That determinism is also the failure story: when
// the owner is unreachable (transport error, non-200, open breaker,
// injected fault) the coordinator falls back to computing locally and
// the response bytes are identical to what the owner would have sent.
//
// Forwarded requests carry X-Flare-Cluster-From so a peer with a
// divergent ring view serves them locally instead of re-forwarding —
// requests traverse at most one hop, which bounds latency and makes
// routing loops impossible.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"flare/internal/cluster"
	"flare/internal/fault"
	"flare/internal/machine"
	"flare/internal/obs"
	"flare/internal/retry"
)

// clusterForwardHeader marks a request as already forwarded once; the
// receiving node must serve it locally (loop guard).
const clusterForwardHeader = "X-Flare-Cluster-From"

// maxPeerBody bounds how much of a peer response the coordinator will
// buffer; estimate bodies are a few hundred bytes.
const maxPeerBody = 1 << 20

// Doer issues HTTP requests to peers. *http.Client satisfies it;
// tests and single-process clusters install an in-memory transport.
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

// ClusterPeer is one cluster member as the coordinator sees it.
type ClusterPeer struct {
	// Name is the node ID placed on the ring. Must be unique.
	Name string
	// URL is the peer's base URL (e.g. http://10.0.0.2:8080). May be
	// empty for the local node.
	URL string
}

// ClusterConfig wires a server into a cluster. See EnableCluster.
type ClusterConfig struct {
	// NodeID is this node's name; it must appear in Peers.
	NodeID string
	// Peers is the full membership, including the local node. Every
	// node must be configured with the same set (ring views that
	// disagree still serve correctly — the loop guard keeps forwarding
	// to one hop — but cache locality suffers).
	Peers []ClusterPeer
	// VirtualNodes is the ring's vnode count per node; <= 0 uses
	// cluster.DefaultVirtualNodes.
	VirtualNodes int
	// Client issues peer requests; nil uses an http.Client with a 10s
	// timeout.
	Client Doer
	// Injector optionally injects faults at the "cluster.peer.request"
	// site, evaluated once per forward attempt. Nil injects nothing.
	Injector *fault.Injector
	// Role is reported in /api/health: "leader", "follower", or
	// "single" (the default when empty).
	Role string
	// ReplStatus, when set (leader nodes), reports per-follower
	// replication lag for /api/health and flare-top.
	ReplStatus func() []cluster.FollowerLag
	// ReplApplied, when set (follower nodes), reports the last applied
	// replication sequence for /api/health.
	ReplApplied func() uint64
}

// coordinator is the per-server cluster state.
type coordinator struct {
	cfg      ClusterConfig
	ring     *cluster.Ring
	peers    map[string]ClusterPeer
	client   Doer
	breakers map[string]*retry.Breaker // per non-self peer
}

// EnableCluster turns this server into a cluster node. Call before
// Handler and before serving; it is not safe to call concurrently with
// request handling.
func (s *Server) EnableCluster(cfg ClusterConfig) error {
	if cfg.NodeID == "" {
		return fmt.Errorf("server: cluster node ID must be non-empty")
	}
	names := make([]string, 0, len(cfg.Peers))
	peers := make(map[string]ClusterPeer, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if _, dup := peers[p.Name]; dup {
			return fmt.Errorf("server: duplicate cluster peer %q", p.Name)
		}
		if p.Name != cfg.NodeID && p.URL == "" {
			return fmt.Errorf("server: peer %q needs a URL", p.Name)
		}
		peers[p.Name] = p
		names = append(names, p.Name)
	}
	if _, ok := peers[cfg.NodeID]; !ok {
		return fmt.Errorf("server: node %q is not in the peer set", cfg.NodeID)
	}
	ring, err := cluster.NewRing(names, cfg.VirtualNodes)
	if err != nil {
		return err
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.Role == "" {
		cfg.Role = "single"
	}
	breakers := make(map[string]*retry.Breaker, len(peers)-1)
	for name := range peers {
		if name != cfg.NodeID {
			breakers[name] = retry.NewBreaker("peer."+name,
				retry.BreakerOptions{Registry: s.reg})
		}
	}
	s.cluster = &coordinator{
		cfg:      cfg,
		ring:     ring,
		peers:    peers,
		client:   cfg.Client,
		breakers: breakers,
	}
	return nil
}

// forwardCount records one routing decision.
func (s *Server) forwardCount(result string) {
	s.reg.Counter("flare_cluster_forward_total",
		"estimate routing decisions by the cluster coordinator",
		"result", result).Inc()
}

// forwardEstimate routes one estimate through the ring. It returns the
// owning peer's verbatim response body and true when the request was
// served remotely; (nil, false) means the caller must compute locally —
// because clustering is off, this node owns the key, the request is
// already one hop deep, or the owner failed (fallback).
func (s *Server) forwardEstimate(r *http.Request, feat, job string) ([]byte, bool) {
	c := s.cluster
	if c == nil {
		return nil, false
	}
	if r.Header.Get(clusterForwardHeader) != "" {
		s.forwardCount("loop_guard")
		return nil, false
	}
	owner := c.ring.Owner(feat)
	if owner == c.cfg.NodeID {
		s.forwardCount("local_owner")
		return nil, false
	}
	body, err := c.fetch(r.Context(), s.tracer, owner, feat, job)
	if err != nil {
		s.forwardCount("fallback")
		if s.logger != nil {
			s.logger.Warn("cluster.forward.fallback",
				obs.KV("peer", owner),
				obs.KV("feature", feat),
				obs.KV("error", err.Error()))
		}
		return nil, false
	}
	s.forwardCount("forwarded")
	return body, true
}

// fetch asks the owning peer for one estimate. Only a 200 response is
// accepted; anything else (or a transport error, or an open breaker)
// is an error the caller converts into local fallback. Outcomes feed
// the per-peer breaker so a dead peer stops costing a round-trip.
func (c *coordinator) fetch(ctx context.Context, tracer *obs.Tracer,
	owner, feat, job string) ([]byte, error) {
	br := c.breakers[owner]
	if err := br.Allow(); err != nil {
		return nil, fmt.Errorf("peer %s: %w", owner, err)
	}
	ctx = obs.WithTracer(ctx, tracer)
	ctx, span := obs.StartSpan(ctx, "cluster.route")
	defer span.End()
	span.SetAttr("peer", owner)
	span.SetAttr("feature", feat)

	res := c.roundTrip(ctx, owner, feat, job)
	br.Record(res.err)
	if res.err != nil {
		span.SetAttr("error", res.err.Error())
	}
	return res.body, res.err
}

// peerResult carries roundTrip's outcome so fetch can record it on the
// breaker and span in one place.
type peerResult struct {
	body []byte
	err  error
}

func (c *coordinator) roundTrip(ctx context.Context, owner, feat, job string) peerResult {
	if err := c.cfg.Injector.Err("cluster.peer.request"); err != nil {
		return peerResult{err: err}
	}
	q := url.Values{"feature": {feat}}
	if job != "" {
		q.Set("job", job)
	}
	u := c.peers[owner].URL + "/api/estimate?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return peerResult{err: err}
	}
	req.Header.Set(clusterForwardHeader, c.cfg.NodeID)
	resp, err := c.client.Do(req)
	if err != nil {
		return peerResult{err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return peerResult{err: err}
	}
	if resp.StatusCode != http.StatusOK {
		return peerResult{err: fmt.Errorf("peer %s answered %d", owner, resp.StatusCode)}
	}
	return peerResult{body: body}
}

// batchEstimateResponse is the /api/estimate/batch body. Estimates are
// raw per-feature estimate bodies in request order; json re-encoding
// compacts them, so a merged response is byte-identical whether every
// element was computed locally or relayed from peers.
type batchEstimateResponse struct {
	Job       string            `json:"job,omitempty"`
	Estimates []json.RawMessage `json:"estimates"`
}

// handleEstimateBatch serves GET /api/estimate/batch?features=a,b,c[&job=J].
// Features are validated up front (no partial fan-out on a bad
// request), then fanned out concurrently — remote features to their
// ring owners, local ones through the singleflight cache — and merged
// in request order. Without clustering every element is local and the
// response bytes are identical, which is what the golden cluster test
// pins down.
func (s *Server) handleEstimateBatch(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	raw := r.URL.Query().Get("features")
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing features parameter")
		return
	}
	names := strings.Split(raw, ",")
	feats := make([]machine.Feature, len(names))
	for i, name := range names {
		feat, ok := s.features[name]
		if !ok {
			writeError(w, http.StatusNotFound, "unknown feature %q", name)
			return
		}
		feats[i] = feat
	}
	job := r.URL.Query().Get("job")

	ctx := obs.WithTracer(r.Context(), s.tracer)
	ctx, span := obs.StartSpan(ctx, "cluster.batch")
	defer span.End()
	span.SetAttr("features", len(feats))
	if s.cluster != nil {
		s.reg.Counter("flare_cluster_batch_requests_total",
			"batch estimate requests fanned out by the coordinator").Inc()
	}
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}

	elems := make([]elemResult, len(feats))
	var wg sync.WaitGroup
	for i := range feats {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			elems[i] = s.estimateElement(ctx, r, feats[i], job)
		}(i)
	}
	wg.Wait()

	// Deterministic error reporting: the lowest-index failure wins.
	// Outcome counters (timeouts, degraded) are recorded HERE, at
	// response-write time, so they count exactly what the client
	// observes: one 503 per timed-out batch (not one per element that
	// shared the deadline), and no degraded elements from batches that
	// failed overall.
	for i := range elems {
		if elems[i].errMsg == "" {
			continue
		}
		if elems[i].timedOut {
			s.reg.Counter("flare_request_timeouts_total",
				"estimate requests that hit RequestTimeout while waiting",
				"route", "/api/estimate/batch").Inc()
		}
		if elems[i].status == http.StatusServiceUnavailable {
			retryAfterHeader(w, time.Second)
		}
		writeError(w, elems[i].status, "feature %q: %s", feats[i].Name, elems[i].errMsg)
		return
	}
	out := make([]json.RawMessage, len(feats))
	for i := range elems {
		out[i] = elems[i].body
		if elems[i].degraded {
			s.countDegraded(estimateResponse{Degraded: true})
		}
	}
	writeJSON(w, http.StatusOK, batchEstimateResponse{Job: job, Estimates: out})
}

// elemResult is one batch element's outcome. timedOut and degraded feed
// the serve-time outcome counters in handleEstimateBatch.
type elemResult struct {
	body     json.RawMessage
	status   int
	errMsg   string
	timedOut bool
	degraded bool
}

// estimateElement resolves one batch element: remote via the ring owner
// when possible, locally otherwise. The returned bytes are a compact
// estimate JSON object. Outcome counters are the caller's job — a batch
// is one request, and what it observes is decided only after every
// element resolves.
func (s *Server) estimateElement(ctx context.Context, r *http.Request,
	feat machine.Feature, job string) elemResult {
	if peerBody, ok := s.forwardEstimate(r, feat.Name, job); ok {
		return elemResult{body: peerBody, status: http.StatusOK}
	}
	entry := s.lookupEstimate(feat, job)
	select {
	case <-entry.done:
	case <-ctx.Done():
		return elemResult{
			status: http.StatusServiceUnavailable,
			errMsg: fmt.Sprintf("estimate still computing after %s; retry later", s.opts.RequestTimeout),

			timedOut: true,
		}
	}
	if entry.errMsg != "" {
		return elemResult{status: entry.status, errMsg: entry.errMsg}
	}
	b, err := json.Marshal(entry.resp)
	if err != nil {
		return elemResult{status: http.StatusInternalServerError, errMsg: err.Error()}
	}
	return elemResult{body: b, status: http.StatusOK, degraded: entry.resp.Degraded}
}

// clusterHealth is the /api/health "cluster" section.
type clusterHealth struct {
	NodeID string `json:"node_id"`
	Role   string `json:"role"` // single | leader | follower
	// Peers is the coordinator's view of every other node, judged by
	// that peer's circuit breaker: ok (closed), degraded (half-open),
	// failing (open).
	Peers []peerHealth `json:"peers"`
	// Followers is per-follower replication lag (leader nodes only).
	Followers []cluster.FollowerLag `json:"followers,omitempty"`
	// ReplAppliedSeq is the last replication event applied locally
	// (follower nodes only).
	ReplAppliedSeq uint64 `json:"repl_applied_seq,omitempty"`
}

// peerHealth is one remote node as seen from here.
type peerHealth struct {
	Name   string `json:"name"`
	Status string `json:"status"` // ok | degraded | failing
}

// health snapshots the coordinator's view for /api/health.
func (c *coordinator) health() *clusterHealth {
	h := &clusterHealth{NodeID: c.cfg.NodeID, Role: c.cfg.Role}
	names := make([]string, 0, len(c.breakers))
	for name := range c.breakers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := "ok"
		switch c.breakers[name].State() {
		case retry.HalfOpen:
			st = "degraded"
		case retry.Open:
			st = "failing"
		}
		h.Peers = append(h.Peers, peerHealth{Name: name, Status: st})
	}
	if c.cfg.ReplStatus != nil {
		h.Followers = c.cfg.ReplStatus()
	}
	if c.cfg.ReplApplied != nil {
		h.ReplAppliedSeq = c.cfg.ReplApplied()
	}
	return h
}
