package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"flare/internal/core"
	"flare/internal/dcsim"
	"flare/internal/machine"
	"flare/internal/replayer"
)

var (
	srvOnce sync.Once
	srvVal  *Server
	srvErr  error
)

func testServer(t *testing.T) *Server {
	t.Helper()
	srvOnce.Do(func() {
		simCfg := dcsim.DefaultConfig()
		simCfg.Duration = 7 * 24 * time.Hour
		simCfg.ResizesPerJobPerDay = 4
		trace, err := dcsim.Run(simCfg)
		if err != nil {
			srvErr = err
			return
		}
		cfg := core.DefaultConfig()
		cfg.Analyze.Clusters = 10
		p, err := core.New(cfg)
		if err != nil {
			srvErr = err
			return
		}
		if err := p.Profile(trace.Scenarios); err != nil {
			srvErr = err
			return
		}
		if err := p.Analyze(); err != nil {
			srvErr = err
			return
		}
		srvVal, srvErr = New(p, machine.PaperFeatures())
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srvVal
}

// get performs a request and decodes the JSON body into out.
func get(t *testing.T, h http.Handler, path string, wantStatus int, out interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("GET %s = %d, want %d (body: %s)", path, rec.Code, wantStatus, rec.Body.String())
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: decoding body: %v", path, err)
		}
	}
}

func TestNewRequiresAnalysedPipeline(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil pipeline did not error")
	}
	p, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(p, nil); err == nil {
		t.Error("un-analysed pipeline did not error")
	}
}

func TestNewRejectsDuplicateFeatures(t *testing.T) {
	s := testServer(t)
	_ = s
	feats := []machine.Feature{machine.Baseline(), machine.Baseline()}
	if _, err := New(srvVal.pipeline, feats); err == nil {
		t.Error("duplicate features did not error")
	}
}

func TestHealthz(t *testing.T) {
	h := testServer(t).Handler()
	var body map[string]string
	get(t, h, "/healthz", http.StatusOK, &body)
	if body["status"] != "ok" {
		t.Errorf("healthz status = %q", body["status"])
	}
}

func TestMethodNotAllowed(t *testing.T) {
	h := testServer(t).Handler()
	req := httptest.NewRequest(http.MethodPost, "/api/summary", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /api/summary = %d, want 405", rec.Code)
	}
}

func TestSummary(t *testing.T) {
	h := testServer(t).Handler()
	var body summaryResponse
	get(t, h, "/api/summary", http.StatusOK, &body)
	if body.Scenarios == 0 || body.Clusters != 10 {
		t.Errorf("summary = %+v", body)
	}
	if body.PrincipalComps == 0 || body.RefinedMetrics >= body.RawMetrics {
		t.Errorf("summary pipeline stats wrong: %+v", body)
	}
	if len(body.Features) != 3 {
		t.Errorf("features = %v, want 3", body.Features)
	}
}

func TestRepresentatives(t *testing.T) {
	h := testServer(t).Handler()
	var body []representativeResponse
	get(t, h, "/api/representatives", http.StatusOK, &body)
	if len(body) == 0 {
		t.Fatal("no representatives")
	}
	var weight float64
	for _, rep := range body {
		if rep.Key == "" {
			t.Errorf("representative %d has empty key", rep.Cluster)
		}
		weight += rep.WeightPct
	}
	if weight < 99 || weight > 101 {
		t.Errorf("weights sum to %v%%, want 100%%", weight)
	}
}

func TestPCs(t *testing.T) {
	h := testServer(t).Handler()
	var body []pcResponse
	get(t, h, "/api/pcs", http.StatusOK, &body)
	if len(body) == 0 {
		t.Fatal("no PCs")
	}
	for _, pc := range body {
		if pc.Interpretation == "" {
			t.Errorf("PC %d has empty interpretation", pc.Index)
		}
	}
}

func TestScenariosFiltering(t *testing.T) {
	h := testServer(t).Handler()
	var all []scenarioResponse
	get(t, h, "/api/scenarios", http.StatusOK, &all)
	var dc []scenarioResponse
	get(t, h, "/api/scenarios?job=DC", http.StatusOK, &dc)
	if len(dc) == 0 || len(dc) >= len(all) {
		t.Errorf("filtering: %d DC scenarios of %d total", len(dc), len(all))
	}
	get(t, h, "/api/scenarios?job=nosuchjob", http.StatusNotFound, nil)
}

func TestEstimate(t *testing.T) {
	h := testServer(t).Handler()
	var body estimateResponse
	get(t, h, "/api/estimate?feature=feature1", http.StatusOK, &body)
	if body.ReductionPct <= 0 {
		t.Errorf("estimate = %+v, want positive reduction", body)
	}
	if body.ScenariosReplayed == 0 {
		t.Error("estimate reports zero cost")
	}

	var perJob estimateResponse
	get(t, h, "/api/estimate?feature=feature2&job=DC", http.StatusOK, &perJob)
	if perJob.Job != "DC" || perJob.ReductionPct <= 0 {
		t.Errorf("per-job estimate = %+v", perJob)
	}
}

func TestEstimateErrors(t *testing.T) {
	h := testServer(t).Handler()
	get(t, h, "/api/estimate", http.StatusBadRequest, nil)
	get(t, h, "/api/estimate?feature=nosuch", http.StatusNotFound, nil)
	get(t, h, "/api/estimate?feature=feature1&job=nosuchjob", http.StatusBadRequest, nil)
}

func TestEstimateCachedAndConcurrent(t *testing.T) {
	h := testServer(t).Handler()
	// Hammer the same estimate concurrently: all responses must agree.
	const workers = 16
	results := make([]estimateResponse, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet, "/api/estimate?feature=feature3", nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			_ = json.Unmarshal(rec.Body.Bytes(), &results[i])
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if results[i].ReductionPct != results[0].ReductionPct {
			t.Fatalf("concurrent estimates disagree: %v vs %v", results[i], results[0])
		}
	}
}

func TestPlanEndpoint(t *testing.T) {
	h := testServer(t).Handler()
	var plan replayer.Plan
	get(t, h, "/api/plan", http.StatusOK, &plan)
	if err := plan.Validate(); err != nil {
		t.Errorf("served plan invalid: %v", err)
	}
	if plan.MachineShape != "default" {
		t.Errorf("plan shape = %q, want default", plan.MachineShape)
	}
}
