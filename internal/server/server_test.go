package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"flare/internal/core"
	"flare/internal/dcsim"
	"flare/internal/machine"
	"flare/internal/obs"
	"flare/internal/replayer"
)

var (
	pipeOnce sync.Once
	pipeVal  *core.Pipeline
	pipeErr  error

	srvOnce sync.Once
	srvVal  *Server
	srvErr  error
)

// testPipeline builds the analysed pipeline fixture shared by every
// server test (it is expensive; resilience tests wrap fresh Servers
// around it instead of rebuilding).
func testPipeline(t testing.TB) *core.Pipeline {
	t.Helper()
	pipeOnce.Do(func() {
		simCfg := dcsim.DefaultConfig()
		simCfg.Duration = 7 * 24 * time.Hour
		simCfg.ResizesPerJobPerDay = 4
		trace, err := dcsim.Run(simCfg)
		if err != nil {
			pipeErr = err
			return
		}
		cfg := core.DefaultConfig()
		cfg.Analyze.Clusters = 10
		p, err := core.New(cfg)
		if err != nil {
			pipeErr = err
			return
		}
		if err := p.Profile(trace.Scenarios); err != nil {
			pipeErr = err
			return
		}
		if err := p.Analyze(); err != nil {
			pipeErr = err
			return
		}
		pipeVal = p
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipeVal
}

func testServer(t *testing.T) *Server {
	t.Helper()
	p := testPipeline(t)
	srvOnce.Do(func() {
		srvVal, srvErr = New(p, machine.PaperFeatures())
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srvVal
}

// get performs a request and decodes the JSON body into out.
func get(t *testing.T, h http.Handler, path string, wantStatus int, out interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("GET %s = %d, want %d (body: %s)", path, rec.Code, wantStatus, rec.Body.String())
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: decoding body: %v", path, err)
		}
	}
}

func TestNewRequiresAnalysedPipeline(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil pipeline did not error")
	}
	p, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(p, nil); err == nil {
		t.Error("un-analysed pipeline did not error")
	}
}

func TestNewRejectsDuplicateFeatures(t *testing.T) {
	s := testServer(t)
	_ = s
	feats := []machine.Feature{machine.Baseline(), machine.Baseline()}
	if _, err := New(srvVal.pipeline, feats); err == nil {
		t.Error("duplicate features did not error")
	}
}

func TestHealthz(t *testing.T) {
	h := testServer(t).Handler()
	var body map[string]string
	get(t, h, "/healthz", http.StatusOK, &body)
	if body["status"] != "ok" {
		t.Errorf("healthz status = %q", body["status"])
	}
}

func TestMethodNotAllowed(t *testing.T) {
	h := testServer(t).Handler()
	req := httptest.NewRequest(http.MethodPost, "/api/summary", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /api/summary = %d, want 405", rec.Code)
	}
}

func TestSummary(t *testing.T) {
	h := testServer(t).Handler()
	var body summaryResponse
	get(t, h, "/api/summary", http.StatusOK, &body)
	if body.Scenarios == 0 || body.Clusters != 10 {
		t.Errorf("summary = %+v", body)
	}
	if body.PrincipalComps == 0 || body.RefinedMetrics >= body.RawMetrics {
		t.Errorf("summary pipeline stats wrong: %+v", body)
	}
	if len(body.Features) != 3 {
		t.Errorf("features = %v, want 3", body.Features)
	}
}

func TestRepresentatives(t *testing.T) {
	h := testServer(t).Handler()
	var body []representativeResponse
	get(t, h, "/api/representatives", http.StatusOK, &body)
	if len(body) == 0 {
		t.Fatal("no representatives")
	}
	var weight float64
	for _, rep := range body {
		if rep.Key == "" {
			t.Errorf("representative %d has empty key", rep.Cluster)
		}
		weight += rep.WeightPct
	}
	if weight < 99 || weight > 101 {
		t.Errorf("weights sum to %v%%, want 100%%", weight)
	}
}

func TestPCs(t *testing.T) {
	h := testServer(t).Handler()
	var body []pcResponse
	get(t, h, "/api/pcs", http.StatusOK, &body)
	if len(body) == 0 {
		t.Fatal("no PCs")
	}
	for _, pc := range body {
		if pc.Interpretation == "" {
			t.Errorf("PC %d has empty interpretation", pc.Index)
		}
	}
}

func TestScenariosFiltering(t *testing.T) {
	h := testServer(t).Handler()
	var all []scenarioResponse
	get(t, h, "/api/scenarios", http.StatusOK, &all)
	var dc []scenarioResponse
	get(t, h, "/api/scenarios?job=DC", http.StatusOK, &dc)
	if len(dc) == 0 || len(dc) >= len(all) {
		t.Errorf("filtering: %d DC scenarios of %d total", len(dc), len(all))
	}
	get(t, h, "/api/scenarios?job=nosuchjob", http.StatusNotFound, nil)
}

func TestEstimate(t *testing.T) {
	h := testServer(t).Handler()
	var body estimateResponse
	get(t, h, "/api/estimate?feature=feature1", http.StatusOK, &body)
	if body.ReductionPct <= 0 {
		t.Errorf("estimate = %+v, want positive reduction", body)
	}
	if body.ScenariosReplayed == 0 {
		t.Error("estimate reports zero cost")
	}

	var perJob estimateResponse
	get(t, h, "/api/estimate?feature=feature2&job=DC", http.StatusOK, &perJob)
	if perJob.Job != "DC" || perJob.ReductionPct <= 0 {
		t.Errorf("per-job estimate = %+v", perJob)
	}
}

func TestEstimateErrors(t *testing.T) {
	h := testServer(t).Handler()
	get(t, h, "/api/estimate", http.StatusBadRequest, nil)
	get(t, h, "/api/estimate?feature=nosuch", http.StatusNotFound, nil)
	get(t, h, "/api/estimate?feature=feature1&job=nosuchjob", http.StatusBadRequest, nil)
}

func TestEstimateCachedAndConcurrent(t *testing.T) {
	h := testServer(t).Handler()
	// Hammer the same estimate concurrently: all responses must agree.
	const workers = 16
	results := make([]estimateResponse, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet, "/api/estimate?feature=feature3", nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			_ = json.Unmarshal(rec.Body.Bytes(), &results[i])
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if results[i].ReductionPct != results[0].ReductionPct {
			t.Fatalf("concurrent estimates disagree: %v vs %v", results[i], results[0])
		}
	}
}

// newTelemetryServer wraps the shared test pipeline in a fresh server
// with an isolated registry and tracer, so telemetry assertions do not
// see counts from other tests.
func newTelemetryServer(t *testing.T) *Server {
	t.Helper()
	testServer(t) // ensure the shared pipeline exists
	reg := obs.NewRegistry()
	s, err := NewWithTelemetry(srvVal.pipeline, machine.PaperFeatures(), reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMetricsExposition(t *testing.T) {
	s := newTelemetryServer(t)
	h := s.Handler()
	// Generate traffic first so the scrape includes request telemetry and
	// (via the estimate's spans) pipeline stage timings.
	get(t, h, "/healthz", http.StatusOK, nil)
	get(t, h, "/api/estimate?feature=feature1", http.StatusOK, nil)
	get(t, h, "/api/estimate", http.StatusBadRequest, nil)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE flare_http_requests_total counter",
		`flare_http_requests_total{code="200",route="/healthz"} 1`,
		`flare_http_requests_total{code="400",route="/api/estimate"} 1`,
		"# TYPE flare_http_request_duration_seconds histogram",
		`flare_http_request_duration_seconds_count{route="/healthz"} 1`,
		"# TYPE flare_stage_duration_seconds histogram",
		`flare_stage_duration_seconds_count{stage="replay.estimate"} 1`,
		`flare_stage_duration_seconds_count{stage="pipeline.evaluate"} 1`,
		`flare_estimate_cache_total{result="miss"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Every non-comment line must be "name{labels} value" — a cheap
	// validity check on the exposition format.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestTraceEndpointSpanNesting(t *testing.T) {
	s := newTelemetryServer(t)
	h := s.Handler()
	get(t, h, "/api/estimate?feature=feature2", http.StatusOK, nil)

	// The request leaves two roots: the middleware's http span and the
	// estimate computation (which runs on its own goroutine/context).
	var roots []obs.SpanSnapshot
	get(t, h, "/api/trace", http.StatusOK, &roots)
	if len(roots) != 2 {
		t.Fatalf("trace roots = %d, want 2", len(roots))
	}
	var root, httpRoot obs.SpanSnapshot
	for _, r := range roots {
		switch r.Name {
		case "server.estimate":
			root = r
		case "http./api/estimate":
			httpRoot = r
		default:
			t.Fatalf("unexpected root span %q", r.Name)
		}
	}
	if httpRoot.Name == "" {
		t.Fatal("missing http request root span")
	}
	foundID := false
	for _, a := range httpRoot.Attrs {
		if a.Key == "request_id" && a.Value != "" {
			foundID = true
		}
	}
	if !foundID {
		t.Errorf("http root missing request_id attr: %+v", httpRoot.Attrs)
	}
	if root.Name != "server.estimate" || root.InFlight {
		t.Errorf("root = %s (in flight %v)", root.Name, root.InFlight)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "pipeline.evaluate" {
		t.Fatalf("root children = %+v", root.Children)
	}
	replay := root.Children[0].Children
	if len(replay) != 1 || replay[0].Name != "replay.estimate" {
		t.Fatalf("evaluate children = %+v", replay)
	}
	if len(replay[0].Children) == 0 {
		t.Error("replay.estimate has no replay.scenario sub-spans")
	}
	for _, c := range replay[0].Children {
		if c.Name != "replay.scenario" {
			t.Errorf("unexpected replay child %q", c.Name)
		}
	}
}

func TestEstimateCacheCounters(t *testing.T) {
	s := newTelemetryServer(t)
	h := s.Handler()
	get(t, h, "/api/estimate?feature=feature1", http.StatusOK, nil)
	get(t, h, "/api/estimate?feature=feature1", http.StatusOK, nil)
	get(t, h, "/api/estimate?feature=feature1&job=DC", http.StatusOK, nil)

	miss := s.Registry().Counter("flare_estimate_cache_total", "", "result", "miss").Value()
	hit := s.Registry().Counter("flare_estimate_cache_total", "", "result", "hit").Value()
	if miss != 2 || hit != 1 {
		t.Errorf("cache counters: miss=%d hit=%d, want miss=2 hit=1", miss, hit)
	}
}

// TestEstimateSingleflight hammers several distinct keys concurrently:
// all requests must succeed, agree per key, and each key must compute at
// most once (misses == distinct keys).
func TestEstimateSingleflight(t *testing.T) {
	s := newTelemetryServer(t)
	h := s.Handler()
	paths := []string{
		"/api/estimate?feature=feature1",
		"/api/estimate?feature=feature2",
		"/api/estimate?feature=feature1&job=DC",
	}
	const perPath = 6
	results := make([][]estimateResponse, len(paths))
	var wg sync.WaitGroup
	for pi, path := range paths {
		results[pi] = make([]estimateResponse, perPath)
		for i := 0; i < perPath; i++ {
			wg.Add(1)
			go func(pi, i int, path string) {
				defer wg.Done()
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("GET %s = %d", path, rec.Code)
					return
				}
				_ = json.Unmarshal(rec.Body.Bytes(), &results[pi][i])
			}(pi, i, path)
		}
	}
	wg.Wait()
	for pi := range paths {
		for i := 1; i < perPath; i++ {
			if results[pi][i] != results[pi][0] {
				t.Errorf("%s: responses disagree: %+v vs %+v", paths[pi], results[pi][i], results[pi][0])
			}
		}
	}
	miss := s.Registry().Counter("flare_estimate_cache_total", "", "result", "miss").Value()
	if miss != uint64(len(paths)) {
		t.Errorf("misses = %d, want %d (one computation per key)", miss, len(paths))
	}
}

func TestEstimateErrorsAreNotCached(t *testing.T) {
	s := newTelemetryServer(t)
	h := s.Handler()
	// Unknown job fails inside the computation (per-job estimation), so it
	// exercises the evict-on-error path; a retry must recompute, not serve
	// the cached failure.
	get(t, h, "/api/estimate?feature=feature1&job=nosuchjob", http.StatusBadRequest, nil)
	get(t, h, "/api/estimate?feature=feature1&job=nosuchjob", http.StatusBadRequest, nil)
	miss := s.Registry().Counter("flare_estimate_cache_total", "", "result", "miss").Value()
	if miss != 2 {
		t.Errorf("misses = %d, want 2 (errors must not be cached)", miss)
	}
}

func TestPprofSurface(t *testing.T) {
	h := newTelemetryServer(t).Handler()
	req := httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}

func TestPlanEndpoint(t *testing.T) {
	h := testServer(t).Handler()
	var plan replayer.Plan
	get(t, h, "/api/plan", http.StatusOK, &plan)
	if err := plan.Validate(); err != nil {
		t.Errorf("served plan invalid: %v", err)
	}
	if plan.MachineShape != "default" {
		t.Errorf("plan shape = %q, want default", plan.MachineShape)
	}
}
