package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"flare/internal/fault"
	"flare/internal/machine"
	"flare/internal/metricdb"
	"flare/internal/obs"
	"flare/internal/retry"
	"flare/internal/store"
)

// resilientServer builds an isolated server over the shared pipeline
// fixture, with a durable metric DB and fast-failing resilience knobs.
// The returned store is the injection point for simulated outages.
func resilientServer(t *testing.T, opts Options) (*Server, *store.Store) {
	t.Helper()
	p := testPipeline(t)
	s, err := NewWithTelemetry(p, machine.PaperFeatures(), obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	stOpts := store.DefaultOptions()
	stOpts.Registry = obs.NewRegistry()
	st, err := store.Open(t.TempDir(), stOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	db, err := metricdb.OpenDB(st)
	if err != nil {
		t.Fatal(err)
	}
	s.AttachDB(db)
	if opts.Retry.MaxAttempts == 0 {
		opts.Retry = retry.Policy{MaxAttempts: 2, Sleep: func(time.Duration) {},
			Registry: obs.NewRegistry()}
	}
	s.SetResilience(opts)
	return s, st
}

// outage arms a total WAL-append failure on the server's store.
func outage(t *testing.T, st *store.Store) *fault.Injector {
	t.Helper()
	in, err := fault.New(fault.MustParseSpec("store.wal.append=error@1"), 1, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	st.SetInjector(in)
	return in
}

// TestDegradedModeUnderStoreOutage drives the headline resilience
// property: once a key has been served successfully, an injected store
// outage must never turn it into a 5xx — the server answers from
// last-known-good with "degraded": true until the store heals.
func TestDegradedModeUnderStoreOutage(t *testing.T) {
	clock := time.Unix(0, 0)
	breaker := retry.NewBreaker("server.store", retry.BreakerOptions{
		Threshold: 1,
		Cooldown:  time.Second,
		Now:       func() time.Time { return clock },
		Registry:  obs.NewRegistry(),
	})
	s, st := resilientServer(t, Options{
		EstimateRefresh: time.Nanosecond, // every request recomputes
		Breaker:         breaker,
	})
	h := s.Handler()
	feat := machine.PaperFeatures()[0].Name
	path := "/api/estimate?feature=" + feat

	// Healthy store: a fresh estimate, journaled.
	var healthy estimateResponse
	get(t, h, path, http.StatusOK, &healthy)
	if healthy.Degraded {
		t.Fatal("healthy response flagged degraded")
	}
	tbl, err := s.db.Table(estimatesTable)
	if err != nil || tbl.Len() == 0 {
		t.Fatalf("estimate was not journaled: table=%v err=%v", tbl, err)
	}

	// Store down: the stale cache forces a recompute, the journal append
	// fails, and the server degrades instead of erroring — repeatedly.
	outage(t, st)
	for i := 0; i < 3; i++ {
		var resp estimateResponse
		get(t, h, path, http.StatusOK, &resp)
		if !resp.Degraded {
			t.Fatalf("request %d during outage not flagged degraded", i)
		}
		if resp.ReductionPct != healthy.ReductionPct {
			t.Fatalf("degraded response altered the estimate: %v vs %v",
				resp.ReductionPct, healthy.ReductionPct)
		}
	}
	if breaker.State() != retry.Open {
		t.Fatalf("breaker state after outage = %v, want Open", breaker.State())
	}

	// A key never served before has no last-known-good: 503 + Retry-After.
	other := "/api/estimate?feature=" + machine.PaperFeatures()[1].Name
	req := httptest.NewRequest(http.MethodGet, other, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("uncached key during outage = %d, want 503 (body: %s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 during outage lacks Retry-After")
	}

	// Store heals, breaker cooldown elapses: fresh non-degraded service.
	st.SetInjector(nil)
	clock = clock.Add(2 * time.Second)
	var healed estimateResponse
	get(t, h, path, http.StatusOK, &healed)
	if healed.Degraded {
		t.Error("response after heal still degraded")
	}
	if breaker.State() != retry.Closed {
		t.Errorf("breaker state after heal = %v, want Closed", breaker.State())
	}
}

// TestConcurrencyLimiterSheds fills the admission semaphore directly and
// verifies /api routes shed with 429 + Retry-After while /healthz and
// /metrics stay reachable.
func TestConcurrencyLimiterSheds(t *testing.T) {
	s, _ := resilientServer(t, Options{MaxConcurrent: 2})
	h := s.Handler()

	s.sem <- struct{}{}
	s.sem <- struct{}{}
	defer func() { <-s.sem; <-s.sem }()

	req := httptest.NewRequest(http.MethodGet, "/api/summary", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("GET /api/summary at limit = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 lacks Retry-After")
	}
	if got := s.reg.Counter("flare_shed_total", "", "route", "/api/summary").Value(); got != 1 {
		t.Errorf("flare_shed_total = %d, want 1", got)
	}

	get(t, h, "/healthz", http.StatusOK, nil)
	reqM := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	recM := httptest.NewRecorder()
	h.ServeHTTP(recM, reqM)
	if recM.Code != http.StatusOK {
		t.Errorf("GET /metrics at limit = %d, want 200 (exempt)", recM.Code)
	}
}

// TestRequestTimeoutBounds verifies a slow estimate computation turns
// into a bounded 503 for the waiter instead of an unbounded hang.
func TestRequestTimeoutBounds(t *testing.T) {
	in, err := fault.New(fault.MustParseSpec("server.estimate=latency@1:300ms"), 1, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	s, _ := resilientServer(t, Options{
		RequestTimeout: 30 * time.Millisecond,
		Injector:       in,
	})
	h := s.Handler()
	path := fmt.Sprintf("/api/estimate?feature=%s", machine.PaperFeatures()[0].Name)

	start := time.Now()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("slow estimate = %d, want 503 (body: %s)", rec.Code, rec.Body.String())
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Errorf("timeout took %s, want ~30ms", elapsed)
	}
	if got := s.reg.Counter("flare_request_timeouts_total", "",
		"route", "/api/estimate").Value(); got != 1 {
		t.Errorf("flare_request_timeouts_total = %d, want 1", got)
	}
}
