package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"flare/internal/machine"
	"flare/internal/metricdb"
	"flare/internal/store"
)

// dbServer builds a fresh Server sharing the fixture pipeline, with the
// profiled dataset persisted into a store-backed database under dir.
// The store is closed via t.Cleanup so the test can reopen dir.
func dbServer(t *testing.T, dir string) *Server {
	t.Helper()
	base := testServer(t)
	st, err := store.Open(dir, store.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	db, err := metricdb.OpenDB(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.pipeline.PersistDataset(db); err != nil {
		t.Fatal(err)
	}
	srv, err := New(base.pipeline, machine.PaperFeatures())
	if err != nil {
		t.Fatal(err)
	}
	srv.AttachDB(db)
	return srv
}

func TestDBEndpointsWithoutDB(t *testing.T) {
	h := testServer(t).Handler()
	get(t, h, "/api/db/tables", http.StatusNotFound, nil)
	get(t, h, "/api/db/query?table=samples", http.StatusNotFound, nil)
}

func TestDBTables(t *testing.T) {
	h := dbServer(t, t.TempDir()).Handler()
	var tables []tableInfo
	get(t, h, "/api/db/tables", http.StatusOK, &tables)
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(tables))
	}
	byName := map[string]tableInfo{}
	for _, ti := range tables {
		byName[ti.Name] = ti
	}
	samples, ok := byName["samples"]
	if !ok {
		t.Fatal("samples table missing")
	}
	if samples.Rows == 0 {
		t.Error("samples table is empty")
	}
	wantCols := []columnInfo{
		{Name: "scenario", Type: "int"},
		{Name: "metric", Type: "string"},
		{Name: "value", Type: "float"},
	}
	if len(samples.Columns) != len(wantCols) {
		t.Fatalf("samples columns = %v", samples.Columns)
	}
	for i, c := range wantCols {
		if samples.Columns[i] != c {
			t.Errorf("samples column %d = %+v, want %+v", i, samples.Columns[i], c)
		}
	}
	if _, ok := byName["job_perf"]; !ok {
		t.Error("job_perf table missing")
	}
}

func TestDBQueryPagingAndFilter(t *testing.T) {
	h := dbServer(t, t.TempDir()).Handler()

	var page queryResponse
	get(t, h, "/api/db/query?table=samples&limit=5", http.StatusOK, &page)
	if len(page.Rows) != 5 {
		t.Fatalf("limit=5 returned %d rows", len(page.Rows))
	}
	if page.Total <= 5 {
		t.Errorf("total_rows = %d, want > 5", page.Total)
	}

	// The second page must pick up exactly where the first left off.
	var next queryResponse
	get(t, h, "/api/db/query?table=samples&limit=5&offset=5", http.StatusOK, &next)
	if next.Total != page.Total {
		t.Errorf("offset changed total_rows: %d vs %d", next.Total, page.Total)
	}
	if len(next.Rows) != 5 {
		t.Fatalf("second page returned %d rows", len(next.Rows))
	}
	if string(mustJSON(t, page.Rows[0])) == string(mustJSON(t, next.Rows[0])) {
		t.Error("offset=5 returned the same first row as offset=0")
	}

	// Typed equality filter: scenario 0's samples only.
	var filtered queryResponse
	get(t, h, "/api/db/query?table=samples&col=scenario&eq=0&limit=10000", http.StatusOK, &filtered)
	if filtered.Total == 0 || filtered.Total >= page.Total {
		t.Errorf("filter total = %d (unfiltered %d)", filtered.Total, page.Total)
	}
	for _, row := range filtered.Rows {
		if row[0] != float64(0) { // JSON numbers decode as float64
			t.Fatalf("filtered row has scenario %v", row[0])
		}
	}

	get(t, h, "/api/db/query", http.StatusBadRequest, nil)
	get(t, h, "/api/db/query?table=nope", http.StatusNotFound, nil)
	get(t, h, "/api/db/query?table=samples&col=scenario", http.StatusBadRequest, nil)
	get(t, h, "/api/db/query?table=samples&col=scenario&eq=notanint", http.StatusBadRequest, nil)
	get(t, h, "/api/db/query?table=samples&offset=-1", http.StatusBadRequest, nil)
	get(t, h, "/api/db/query?table=samples&limit=x", http.StatusBadRequest, nil)
}

// TestDBQuerySurvivesRestart is the acceptance check for durability: a
// server opened against an existing database directory serves exactly
// the same /api/db/query bytes as the server that wrote it.
func TestDBQuerySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	const q = "/api/db/query?table=job_perf&limit=10000"
	base := testServer(t)

	// First "run": persist the dataset durably and record a query.
	st1, err := store.Open(dir, store.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	db1, err := metricdb.OpenDB(st1)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.pipeline.PersistDataset(db1); err != nil {
		t.Fatal(err)
	}
	srv1, err := New(base.pipeline, machine.PaperFeatures())
	if err != nil {
		t.Fatal(err)
	}
	srv1.AttachDB(db1)
	before := rawGet(t, srv1.Handler(), q)
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen the directory and attach it to a fresh server,
	// without re-persisting (the dataset is already recorded).
	st, err := store.Open(dir, store.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	db, err := metricdb.OpenDB(st)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(base.pipeline, machine.PaperFeatures())
	if err != nil {
		t.Fatal(err)
	}
	srv.AttachDB(db)

	after := rawGet(t, srv.Handler(), q)
	if before != after {
		t.Errorf("query results changed across restart:\nbefore: %.200s\nafter:  %.200s", before, after)
	}
}

func mustJSON(t *testing.T, v interface{}) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func rawGet(t *testing.T, h http.Handler, path string) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d (body: %s)", path, rec.Code, rec.Body.String())
	}
	return rec.Body.String()
}
