package server

import (
	"net/http"
	"strconv"
	"time"
)

// statusWriter captures the response status code for telemetry.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the request-telemetry middleware: a
// per-route latency histogram, a per-route/status counter, and optional
// request logging. route is the registered mux pattern, used as the label
// value so cardinality stays bounded by the route table regardless of
// what paths clients request.
func (s *Server) instrument(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)

		s.reg.Counter("flare_http_requests_total",
			"HTTP requests served by route and status code",
			"route", route, "code", strconv.Itoa(sw.status)).Inc()
		s.reg.Histogram("flare_http_request_duration_seconds",
			"HTTP request latency by route", nil,
			"route", route).Observe(elapsed.Seconds())
		if s.Logger != nil {
			s.Logger.Printf("%s %s -> %d (%s)", r.Method, r.URL.RequestURI(), sw.status, elapsed)
		}
	})
}
