package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"flare/internal/obs"
)

// statusWriter captures the response status code for telemetry.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// tracedRoute reports whether a route gets per-request trace capture.
// Scrape, probe, and introspection endpoints are excluded: tracing the
// poller that reads the traces would drown real request history.
func tracedRoute(route string) bool {
	switch route {
	case "/metrics", "/healthz", "/api/health", "/api/trace":
		return false
	}
	return !strings.HasPrefix(route, "/debug/pprof")
}

// nextRequestID mints a process-unique request ID. The base36 start
// timestamp prefix keeps IDs from colliding across restarts, so they
// stay unique within the durable trace history too.
func (s *Server) nextRequestID() string {
	return s.reqBase + "-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
}

// instrument wraps a handler with the request-telemetry middleware: a
// per-route latency histogram, a per-route/status counter, and — for
// traced routes — a request ID, a root span capturing the request's
// stage tree, a structured wide event, and durable trace export. route
// is the registered mux pattern, used as the label value so cardinality
// stays bounded by the route table regardless of what paths clients
// request.
func (s *Server) instrument(route string, next http.Handler) http.Handler {
	traced := tracedRoute(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}

		var span *obs.Span
		var reqID string
		req := r
		if traced {
			reqID = s.nextRequestID()
			ctx := obs.WithTracer(r.Context(), s.tracer)
			ctx, span = obs.StartSpan(ctx, "http."+route)
			span.SetAttr("request_id", reqID)
			span.SetAttr("method", r.Method)
			if l := s.logger; l != nil {
				ctx = obs.WithLogger(ctx, l.With(obs.KV("request_id", reqID)))
			}
			sw.Header().Set("X-Request-Id", reqID)
			req = r.WithContext(ctx)
		}

		defer func() {
			elapsed := time.Since(start)
			s.reg.Counter("flare_http_requests_total",
				"HTTP requests served by route and status code",
				"route", route, "code", strconv.Itoa(sw.status)).Inc()
			s.reg.Histogram("flare_http_request_duration_seconds",
				"HTTP request latency by route", nil,
				"route", route).Observe(elapsed.Seconds())
			if span != nil {
				span.SetAttr("status", sw.status)
				span.End()
			}
			if s.Logger != nil {
				s.Logger.Printf("%s %s -> %d (%s)", r.Method, r.URL.RequestURI(), sw.status, elapsed)
			}
			if traced {
				s.logger.Info("request",
					obs.KV("request_id", reqID),
					obs.KV("method", r.Method),
					obs.KV("route", route),
					obs.KV("path", r.URL.RequestURI()),
					obs.KV("status", sw.status),
					obs.KV("duration_ms", float64(elapsed)/float64(time.Millisecond)))
			}
			if span != nil && s.exporter != nil {
				traceJSON := "{}"
				if b, err := json.Marshal(span.Snapshot()); err == nil {
					traceJSON = string(b)
				}
				s.exporter.enqueueTrace(traceRecord{
					id:          reqID,
					route:       route,
					method:      r.Method,
					status:      sw.status,
					durationMs:  float64(elapsed) / float64(time.Millisecond),
					startUnixMs: start.UnixMilli(),
					traceJSON:   traceJSON,
				})
			}
		}()
		next.ServeHTTP(sw, req)
	})
}
