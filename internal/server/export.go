// Durable wide-event export. Completed request traces and structured
// log events flow through a buffered queue into dedicated metricdb
// tables (journaled by the store-backed backend when one is attached),
// so /api/trace can page through request history across restarts and
// regressions are diagnosable after the fact, not only while a human
// is watching. Export is strictly off the request path: the middleware
// enqueues without blocking and a full queue drops (counted) rather
// than stalling a response.
package server

import (
	"encoding/json"
	"fmt"

	"flare/internal/metricdb"
	"flare/internal/obs"
)

// Export table names. They live beside the estimates audit table in the
// attached metric database, so /api/db/query can inspect them too.
const (
	tracesTable = "request_traces"
	eventsTable = "request_events"
)

// DefaultExportRetain bounds each export table's row count.
const DefaultExportRetain = 1024

// ExportOptions tunes EnableTraceExport.
type ExportOptions struct {
	// Retain is the maximum rows kept per export table; older rows are
	// truncated away (durably, when the DB is store-backed). <= 0 means
	// DefaultExportRetain.
	Retain int
	// Buffer is the export queue depth; a full queue drops records.
	// <= 0 means 256.
	Buffer int
}

// exportRecord is one queued export: exactly one of trace/event is set,
// or flush marks a synchronisation barrier.
type exportRecord struct {
	trace *traceRecord
	event *obs.Event
	flush chan struct{} // closed by the worker when it reaches this record
}

// traceRecord is one completed request, flattened for the traces table.
type traceRecord struct {
	id          string
	route       string
	method      string
	status      int
	durationMs  float64
	startUnixMs int64
	traceJSON   string
}

// traceExporter drains the export queue into the metricdb tables on a
// single goroutine, enforcing retention after each append.
type traceExporter struct {
	traces *metricdb.Table
	events *metricdb.Table
	retain int

	ch   chan exportRecord
	done chan struct{}

	exportedTraces *obs.Counter
	exportedEvents *obs.Counter
	failures       *obs.Counter
	dropped        *obs.Counter
}

// exportTables ensures both export tables exist in db.
func exportTables(db *metricdb.DB) (traces, events *metricdb.Table, err error) {
	traces, err = db.Table(tracesTable)
	if err != nil {
		traces, err = db.CreateTable(tracesTable, []metricdb.Column{
			{Name: "id", Type: metricdb.TypeString},
			{Name: "route", Type: metricdb.TypeString},
			{Name: "method", Type: metricdb.TypeString},
			{Name: "status", Type: metricdb.TypeInt},
			{Name: "duration_ms", Type: metricdb.TypeFloat},
			{Name: "start_unix_ms", Type: metricdb.TypeInt},
			{Name: "trace", Type: metricdb.TypeString},
		})
		if err != nil {
			return nil, nil, fmt.Errorf("server: creating %s table: %w", tracesTable, err)
		}
	}
	events, err = db.Table(eventsTable)
	if err != nil {
		events, err = db.CreateTable(eventsTable, []metricdb.Column{
			{Name: "ts_unix_ms", Type: metricdb.TypeInt},
			{Name: "level", Type: metricdb.TypeString},
			{Name: "msg", Type: metricdb.TypeString},
			{Name: "attrs", Type: metricdb.TypeString},
		})
		if err != nil {
			return nil, nil, fmt.Errorf("server: creating %s table: %w", eventsTable, err)
		}
	}
	return traces, events, nil
}

func newTraceExporter(db *metricdb.DB, reg *obs.Registry, opts ExportOptions) (*traceExporter, error) {
	traces, events, err := exportTables(db)
	if err != nil {
		return nil, err
	}
	if opts.Retain <= 0 {
		opts.Retain = DefaultExportRetain
	}
	if opts.Buffer <= 0 {
		opts.Buffer = 256
	}
	e := &traceExporter{
		traces: traces,
		events: events,
		retain: opts.Retain,
		ch:     make(chan exportRecord, opts.Buffer),
		done:   make(chan struct{}),
		exportedTraces: reg.Counter("flare_trace_exported_total",
			"request traces and events journaled to the export tables", "table", tracesTable),
		exportedEvents: reg.Counter("flare_trace_exported_total",
			"request traces and events journaled to the export tables", "table", eventsTable),
		failures: reg.Counter("flare_trace_export_failures_total",
			"export inserts that failed after retries"),
		dropped: reg.Counter("flare_trace_export_dropped_total",
			"export records dropped because the queue was full"),
	}
	go e.run()
	return e, nil
}

// enqueueTrace offers a completed request trace; never blocks.
func (e *traceExporter) enqueueTrace(rec traceRecord) {
	select {
	case e.ch <- exportRecord{trace: &rec}:
	default:
		e.dropped.Inc()
	}
}

// enqueueEvent offers a log event; never blocks. It is the server's
// logger Hook, so it must stay cheap on the caller's goroutine.
func (e *traceExporter) enqueueEvent(ev obs.Event) {
	select {
	case e.ch <- exportRecord{event: &ev}:
	default:
		e.dropped.Inc()
	}
}

// Flush blocks until every record enqueued before the call is applied.
func (e *traceExporter) Flush() {
	barrier := make(chan struct{})
	select {
	case e.ch <- exportRecord{flush: barrier}:
		select {
		case <-barrier:
		case <-e.done: // worker already stopped
		}
	case <-e.done:
	}
}

// Close drains the queue and stops the worker. The exporter must not be
// used afterwards.
func (e *traceExporter) Close() {
	close(e.ch)
	<-e.done
}

// retentionSlack delays truncation until a batch of rows accumulates
// past the cap, amortising the marker append instead of journaling one
// per insert.
func retentionSlack(retain int) int {
	slack := retain / 8
	if slack < 1 {
		slack = 1
	}
	return slack
}

func (e *traceExporter) run() {
	defer close(e.done)
	slack := retentionSlack(e.retain)
	for rec := range e.ch {
		switch {
		case rec.flush != nil:
			close(rec.flush)
			continue
		case rec.trace != nil:
			tr := rec.trace
			err := e.traces.Insert(metricdb.Row{
				metricdb.String(tr.id),
				metricdb.String(tr.route),
				metricdb.String(tr.method),
				metricdb.Int(int64(tr.status)),
				metricdb.Float(tr.durationMs),
				metricdb.Int(tr.startUnixMs),
				metricdb.String(tr.traceJSON),
			})
			e.settle(e.traces, e.exportedTraces, slack, err)
		case rec.event != nil:
			ev := rec.event
			attrs := "[]"
			if len(ev.Attrs) > 0 {
				if b, err := json.Marshal(ev.Attrs); err == nil {
					attrs = string(b)
				}
			}
			err := e.events.Insert(metricdb.Row{
				metricdb.Int(ev.Time.UnixMilli()),
				metricdb.String(ev.Level.String()),
				metricdb.String(ev.Msg),
				metricdb.String(attrs),
			})
			e.settle(e.events, e.exportedEvents, slack, err)
		}
	}
}

// settle accounts one insert and applies retention to its table.
func (e *traceExporter) settle(t *metricdb.Table, exported *obs.Counter, slack int, err error) {
	if err != nil {
		e.failures.Inc()
		return
	}
	exported.Inc()
	if t.Len() >= e.retain+slack {
		if _, err := t.TruncateHead(e.retain); err != nil {
			e.failures.Inc()
		}
	}
}
