package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"flare/internal/core"
	"flare/internal/dcsim"
	"flare/internal/machine"
	"flare/internal/scenario"
)

// newTickServer builds a server over its own pipeline (ticks mutate the
// pipeline, so the shared fixture cannot be used), profiled on all but
// the returned held-back scenarios.
func newTickServer(t *testing.T, hold int) (*Server, []scenario.Scenario) {
	t.Helper()
	simCfg := dcsim.DefaultConfig()
	simCfg.Duration = 4 * 24 * time.Hour
	simCfg.ResizesPerJobPerDay = 4
	trace, err := dcsim.Run(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	all := trace.Scenarios.All()
	if len(all) <= hold+2 {
		t.Fatalf("trace produced %d scenarios, need more than %d", len(all), hold+2)
	}
	set := scenario.NewSet()
	for _, sc := range all[:len(all)-hold] {
		set.Add(sc)
	}
	cfg := core.DefaultConfig()
	cfg.Analyze.Clusters = 8
	p, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Profile(set); err != nil {
		t.Fatal(err)
	}
	if err := p.Analyze(); err != nil {
		t.Fatal(err)
	}
	s, err := New(p, machine.PaperFeatures())
	if err != nil {
		t.Fatal(err)
	}
	return s, all[len(all)-hold:]
}

func postTick(t *testing.T, h http.Handler, body interface{}, wantStatus int, out interface{}) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/tick", &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("POST /api/tick = %d, want %d (body: %s)", rec.Code, wantStatus, rec.Body.String())
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding tick response: %v", err)
		}
	}
}

func TestTickEndpoint(t *testing.T) {
	s, held := newTickServer(t, 6)
	h := s.Handler()
	before := s.pipeline.Dataset().Scenarios.Len()

	// Warm the estimate cache so the tick has something to invalidate.
	var est estimateResponse
	get(t, h, "/api/estimate?feature="+machine.PaperFeatures()[0].Name, http.StatusOK, &est)
	if len(s.cache) == 0 {
		t.Fatal("estimate did not populate the cache")
	}

	req := tickRequest{Changed: []int{0, 3}}
	for _, sc := range held {
		req.Scenarios = append(req.Scenarios, tickScenario{Placements: sc.Placements, Observed: sc.Observed})
	}
	var resp tickResponse
	postTick(t, h, req, http.StatusOK, &resp)

	if resp.Added != len(held) {
		t.Errorf("added = %d, want %d", resp.Added, len(held))
	}
	if resp.Remeasured != 2 {
		t.Errorf("remeasured = %d, want 2", resp.Remeasured)
	}
	if resp.Scenarios != before+len(held) {
		t.Errorf("scenarios = %d, want %d", resp.Scenarios, before+len(held))
	}
	if resp.Representatives == 0 {
		t.Error("tick response reports no representatives")
	}

	// The estimate cache was invalidated; lastGood survives as fallback.
	s.mu.Lock()
	cached, lastGood := len(s.cache), len(s.lastGood)
	s.mu.Unlock()
	if cached != 0 {
		t.Errorf("estimate cache holds %d entries after tick, want 0", cached)
	}
	if lastGood == 0 {
		t.Error("tick dropped the last-known-good estimates")
	}

	// The serving surface reflects the grown population immediately.
	var sum summaryResponse
	get(t, h, "/api/summary", http.StatusOK, &sum)
	if sum.Scenarios != before+len(held) {
		t.Errorf("summary scenarios = %d, want %d", sum.Scenarios, before+len(held))
	}
	var scs []scenarioResponse
	get(t, h, "/api/scenarios", http.StatusOK, &scs)
	if len(scs) != before+len(held) {
		t.Errorf("scenario listing has %d entries, want %d", len(scs), before+len(held))
	}
	get(t, h, "/api/estimate?feature="+machine.PaperFeatures()[0].Name, http.StatusOK, &est)
	if est.ReductionPct <= 0 {
		t.Errorf("post-tick estimate %v, want positive", est.ReductionPct)
	}

	// A duplicate tick dedups onto existing IDs: nothing added, and
	// re-measurement keeps the dataset byte-identical (exactness guarantee).
	postTick(t, h, req, http.StatusOK, &resp)
	if resp.Added != 0 {
		t.Errorf("duplicate tick added %d scenarios, want 0", resp.Added)
	}
}

func TestTickEndpointErrors(t *testing.T) {
	s, _ := newTickServer(t, 2)
	h := s.Handler()

	req := httptest.NewRequest(http.MethodGet, "/api/tick", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/tick = %d, want 405", rec.Code)
	}

	postTick(t, h, tickRequest{}, http.StatusBadRequest, nil)
	postTick(t, h, tickRequest{
		Scenarios: []tickScenario{{Placements: []scenario.Placement{{Job: "", Instances: 1}}}},
	}, http.StatusBadRequest, nil)
	postTick(t, h, tickRequest{Changed: []int{999999}}, http.StatusBadRequest, nil)
	postTick(t, h, tickRequest{Changed: []int{-1}}, http.StatusBadRequest, nil)

	// A scenario naming an unknown job must be rejected BEFORE it reaches
	// the append-only set — once added it could never be profiled, and
	// every later tick would fail on it.
	before := s.pipeline.Dataset().Scenarios.Len()
	postTick(t, h, tickRequest{
		Scenarios: []tickScenario{{Placements: []scenario.Placement{{Job: "no-such-job", Instances: 1}}}},
	}, http.StatusBadRequest, nil)
	if got := s.pipeline.Dataset().Scenarios.Len(); got != before {
		t.Errorf("rejected tick grew the population: %d -> %d", before, got)
	}

	req = httptest.NewRequest(http.MethodPost, "/api/tick", bytes.NewBufferString("{not json"))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", rec.Code)
	}
}

// TestTickConcurrentWithEstimates exercises the pipeline lock: ticks and
// estimate/summary reads race freely and must neither deadlock nor
// corrupt state (run under -race in CI).
func TestTickConcurrentWithEstimates(t *testing.T) {
	s, held := newTickServer(t, 4)
	h := s.Handler()
	feat := machine.PaperFeatures()[0].Name

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				req := httptest.NewRequest(http.MethodGet, "/api/estimate?feature="+feat, nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("estimate during tick = %d", rec.Code)
					return
				}
				req = httptest.NewRequest(http.MethodGet, "/api/summary", nil)
				rec = httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("summary during tick = %d", rec.Code)
					return
				}
			}
		}()
	}
	for i, sc := range held {
		tr := tickRequest{
			Scenarios: []tickScenario{{Placements: sc.Placements, Observed: sc.Observed}},
			Changed:   []int{i},
		}
		var resp tickResponse
		postTick(t, h, tr, http.StatusOK, &resp)
		if resp.Scenarios == 0 {
			t.Fatal("tick reported empty population")
		}
	}
	wg.Wait()

	var sum summaryResponse
	get(t, h, "/api/summary", http.StatusOK, &sum)
	want := s.pipeline.Dataset().Scenarios.Len()
	if sum.Scenarios != want {
		t.Fatalf("summary scenarios = %d, want %d", sum.Scenarios, want)
	}
}
