package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// artifactsEnv names the directory server tests dump diagnostics into
// when they fail. CI sets it and uploads the directory as a workflow
// artifact, so a red run ships its /metrics exposition and trace JSON
// alongside the log.
const artifactsEnv = "FLARE_TEST_ARTIFACTS"

// dumpArtifactsOnFailure registers a cleanup that, if the test failed
// and FLARE_TEST_ARTIFACTS is set, writes the server's metrics and
// retained traces there. Registered by the server-building test
// helpers; a no-op on green tests and unset environments.
func dumpArtifactsOnFailure(t *testing.T, s *Server) {
	t.Helper()
	dir := os.Getenv(artifactsEnv)
	if dir == "" {
		return
	}
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		if err := dumpArtifacts(t.Name(), s, dir); err != nil {
			t.Logf("artifacts: %v", err)
		} else {
			t.Logf("artifacts: wrote metrics + trace for %s under %s", t.Name(), dir)
		}
	})
}

// dumpArtifacts writes one metrics exposition and one trace JSON file
// for the named test into dir.
func dumpArtifacts(name string, s *Server, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := strings.ReplaceAll(name, "/", "_") // subtests carry slashes

	var metrics strings.Builder
	if err := s.Registry().WritePrometheus(&metrics); err != nil {
		fmt.Fprintf(&metrics, "# rendering failed: %v\n", err)
	}
	if err := os.WriteFile(filepath.Join(dir, base+".metrics.txt"),
		[]byte(metrics.String()), 0o644); err != nil {
		return err
	}

	var traces strings.Builder
	if err := s.Tracer().WriteJSON(&traces); err != nil {
		fmt.Fprintf(&traces, `{"error": %q}`, err.Error())
	}
	return os.WriteFile(filepath.Join(dir, base+".trace.json"),
		[]byte(traces.String()), 0o644)
}

// TestArtifactDump covers the CI failure-diagnostics path: the dump
// must produce a parseable exposition and a trace document.
func TestArtifactDump(t *testing.T) {
	dir := t.TempDir()
	s := newTelemetryServer(t)
	h := s.Handler()
	get(t, h, "/api/summary", http.StatusOK, nil)

	if err := dumpArtifacts("TestArtifactDump/sub", s, dir); err != nil {
		t.Fatal(err)
	}
	metrics, err := os.ReadFile(filepath.Join(dir, "TestArtifactDump_sub.metrics.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "flare_http_requests_total") {
		t.Errorf("metrics artifact lacks request telemetry:\n%s", metrics)
	}
	trace, err := os.ReadFile(filepath.Join(dir, "TestArtifactDump_sub.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), `"roots"`) {
		t.Errorf("trace artifact lacks roots:\n%s", trace)
	}
}
