package server

import (
	"errors"
	"net/http"
	"strconv"

	"flare/internal/metricdb"
)

// AttachDB exposes a metric database (typically the durable, store-backed
// one opened from -db-dir) at /api/db/tables and /api/db/query. Call
// before Handler; without it those routes answer 404.
func (s *Server) AttachDB(db *metricdb.DB) { s.db = db }

// tableInfo describes one table at /api/db/tables.
type tableInfo struct {
	Name    string       `json:"name"`
	Columns []columnInfo `json:"columns"`
	Rows    int          `json:"rows"`
}

type columnInfo struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// handleDBTables lists the database's tables with schemas and row counts.
func (s *Server) handleDBTables(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	if s.db == nil {
		writeError(w, http.StatusNotFound, "no metric database attached (start flare-server with -db-dir)")
		return
	}
	out := make([]tableInfo, 0)
	for _, name := range s.db.TableNames() {
		t, err := s.db.Table(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "resolving table %s: %v", name, err)
			return
		}
		info := tableInfo{Name: name, Rows: t.Len()}
		for _, c := range t.Columns() {
			info.Columns = append(info.Columns, columnInfo{Name: c.Name, Type: c.Type.String()})
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// queryResponse is a page of rows from one table.
type queryResponse struct {
	Table   string          `json:"table"`
	Columns []columnInfo    `json:"columns"`
	Total   int             `json:"total_rows"`
	Offset  int             `json:"offset"`
	Rows    [][]interface{} `json:"rows"`
}

const (
	queryDefaultLimit = 100
	queryMaxLimit     = 10000
)

// handleDBQuery serves rows from one table with paging and an optional
// per-column equality filter:
//
//	GET /api/db/query?table=samples[&col=metric&eq=MIPS][&offset=0][&limit=100]
//
// Cells are rendered as native JSON values (numbers / strings) in column
// order; total_rows counts every row matching the filter, before paging.
func (s *Server) handleDBQuery(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	if s.db == nil {
		writeError(w, http.StatusNotFound, "no metric database attached (start flare-server with -db-dir)")
		return
	}
	q := r.URL.Query()
	name := q.Get("table")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing table parameter")
		return
	}
	t, err := s.db.Table(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}

	where, err := buildFilter(t, q.Get("col"), q.Get("eq"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	offset, err := intParam(q.Get("offset"), 0)
	if err != nil || offset < 0 {
		writeError(w, http.StatusBadRequest, "bad offset %q", q.Get("offset"))
		return
	}
	limit, err := intParam(q.Get("limit"), queryDefaultLimit)
	if err != nil || limit < 0 {
		writeError(w, http.StatusBadRequest, "bad limit %q", q.Get("limit"))
		return
	}
	if limit > queryMaxLimit {
		limit = queryMaxLimit
	}

	cols := t.Columns()
	resp := queryResponse{Table: name, Offset: offset, Rows: make([][]interface{}, 0, limit)}
	for _, c := range cols {
		resp.Columns = append(resp.Columns, columnInfo{Name: c.Name, Type: c.Type.String()})
	}
	for _, row := range t.Select(where) {
		resp.Total++
		if resp.Total <= offset || len(resp.Rows) >= limit {
			continue
		}
		cells := make([]interface{}, len(row))
		for i, v := range row {
			switch cols[i].Type {
			case metricdb.TypeFloat:
				cells[i] = v.F
			case metricdb.TypeInt:
				cells[i] = v.I
			default:
				cells[i] = v.S
			}
		}
		resp.Rows = append(resp.Rows, cells)
	}
	writeJSON(w, http.StatusOK, resp)
}

// buildFilter turns col/eq query parameters into a row predicate. The eq
// literal is parsed per the column's type.
func buildFilter(t *metricdb.Table, col, eq string) (func(metricdb.Row) bool, error) {
	if col == "" && eq == "" {
		return nil, nil
	}
	if col == "" || eq == "" {
		return nil, errors.New("col and eq must be given together")
	}
	idx, err := t.ColumnIndex(col)
	if err != nil {
		return nil, err
	}
	switch t.Columns()[idx].Type {
	case metricdb.TypeFloat:
		want, err := strconv.ParseFloat(eq, 64)
		if err != nil {
			return nil, err
		}
		return func(r metricdb.Row) bool { return r[idx].F == want }, nil
	case metricdb.TypeInt:
		want, err := strconv.ParseInt(eq, 10, 64)
		if err != nil {
			return nil, err
		}
		return func(r metricdb.Row) bool { return r[idx].I == want }, nil
	default:
		return func(r metricdb.Row) bool { return r[idx].S == eq }, nil
	}
}

// intParam parses an optional integer query parameter.
func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}
