package server

import (
	"encoding/json"
	"io"
	"net/http"

	"flare/internal/obs"
	"flare/internal/scenario"
)

// maxTickBody bounds the tick request body; a tick is a delta, and a
// delta larger than this should go through a full re-profile instead.
const maxTickBody = 1 << 20

// tickRequest is the POST /api/tick body: scenarios newly observed by the
// datacenter since the last profile/tick, plus IDs of already-profiled
// scenarios whose behaviour changed and should be re-measured.
type tickRequest struct {
	Scenarios []tickScenario `json:"scenarios"`
	Changed   []int          `json:"changed"`
}

// tickScenario is one observed colocation to fold into the population.
type tickScenario struct {
	Placements []scenario.Placement `json:"placements"`
	Observed   int                  `json:"observed"`
}

// tickResponse reports what the tick touched.
type tickResponse struct {
	Added           int `json:"added"`           // scenarios new to the population
	Remeasured      int `json:"remeasured"`      // changed scenarios re-profiled
	Scenarios       int `json:"scenarios"`       // population size after the tick
	Clusters        int `json:"clusters"`        // cluster count after the tick
	Representatives int `json:"representatives"` // representative count after the tick
}

// handleTick folds a datacenter tick into the serving pipeline: new
// scenarios are profiled, changed ones re-measured, and the analysis is
// refreshed incrementally (O(delta), falling back to a full rebuild on
// drift — see core.Pipeline.TickContext). On success the estimate cache
// is cleared so subsequent estimates see the new representatives; the
// last-known-good estimates are kept as the degraded-service fallback.
func (s *Server) handleTick(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req tickRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxTickBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad tick request: %v", err)
		return
	}
	if len(req.Scenarios) == 0 && len(req.Changed) == 0 {
		writeError(w, http.StatusBadRequest, "empty tick: no scenarios and no changed IDs")
		return
	}

	// Canonicalise and validate the incoming scenarios before taking the
	// write lock. Job names must resolve in the pipeline's catalog NOW:
	// the scenario set is append-only, so a scenario that cannot be
	// profiled would poison every subsequent tick if it were added first.
	jobs := s.pipeline.Jobs()
	incoming := make([]scenario.Scenario, 0, len(req.Scenarios))
	for i, ts := range req.Scenarios {
		sc, err := scenario.New(ts.Placements)
		if err != nil {
			writeError(w, http.StatusBadRequest, "scenario %d: %v", i, err)
			return
		}
		for _, p := range sc.Placements {
			if _, err := jobs.Lookup(p.Job); err != nil {
				writeError(w, http.StatusBadRequest, "scenario %d: %v", i, err)
				return
			}
		}
		sc.Observed = ts.Observed
		if sc.Observed <= 0 {
			sc.Observed = 1
		}
		incoming = append(incoming, sc)
	}

	ctx := obs.WithTracer(r.Context(), s.tracer)
	s.pmu.Lock()
	ds := s.pipeline.Dataset()
	// Same poisoning hazard for bad changed IDs: reject before the set
	// grows, not after.
	for _, id := range req.Changed {
		if id < 0 || id >= ds.Matrix.Rows() {
			s.pmu.Unlock()
			writeError(w, http.StatusBadRequest, "changed scenario %d out of range [0, %d)", id, ds.Matrix.Rows())
			return
		}
	}
	set := ds.Scenarios
	before := set.Len()
	for _, sc := range incoming {
		set.Add(sc) // known colocations dedup onto their existing IDs
	}
	added := set.Len() - before
	err := s.pipeline.TickContext(ctx, req.Changed)
	an := s.pipeline.Analysis()
	s.pmu.Unlock()
	if err != nil {
		// The profiler rejects the whole tick on a bad changed ID before
		// measuring anything, so the dataset is still consistent.
		writeError(w, http.StatusBadRequest, "tick failed: %v", err)
		return
	}

	// Estimates were computed against the previous analysis: drop them.
	// lastGood survives as the store-outage fallback.
	s.mu.Lock()
	s.cache = make(map[string]*estimateEntry)
	s.mu.Unlock()
	s.reg.Counter("flare_ticks_total", "datacenter ticks folded into the pipeline").Inc()

	writeJSON(w, http.StatusOK, tickResponse{
		Added:           added,
		Remeasured:      len(req.Changed),
		Scenarios:       set.Len(),
		Clusters:        an.Clustering.K,
		Representatives: len(an.Representatives),
	})
}
