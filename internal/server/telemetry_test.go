package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"flare/internal/machine"
	"flare/internal/metricdb"
	"flare/internal/obs"
	"flare/internal/retry"
	"flare/internal/store"
)

// exportServer builds a server over the shared pipeline fixture with
// durable trace export into a store at dir. Close the returned store
// (after CloseTelemetry) to simulate a shutdown; reopening dir recovers
// the history.
func exportServer(t *testing.T, dir string, opts ExportOptions) (*Server, *store.Store) {
	t.Helper()
	p := testPipeline(t)
	s, err := NewWithTelemetry(p, machine.PaperFeatures(), obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	stOpts := store.DefaultOptions()
	stOpts.Registry = obs.NewRegistry()
	st, err := store.Open(dir, stOpts)
	if err != nil {
		t.Fatal(err)
	}
	db, err := metricdb.OpenDB(st)
	if err != nil {
		t.Fatal(err)
	}
	s.AttachDB(db)
	if err := s.EnableTraceExport(db, opts); err != nil {
		t.Fatal(err)
	}
	dumpArtifactsOnFailure(t, s)
	return s, st
}

// TestTraceExportSurvivesRestart is the acceptance path: requests
// served before a shutdown are still readable through /api/trace?page=
// after the store is reopened by a fresh server process.
func TestTraceExportSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, st := exportServer(t, dir, ExportOptions{})
	h := s.Handler()
	for i := 0; i < 3; i++ {
		get(t, h, "/api/summary", http.StatusOK, nil)
	}
	s.FlushTelemetry()
	var before tracePage
	get(t, h, "/api/trace?page=0", http.StatusOK, &before)
	if before.Total != 3 {
		t.Fatalf("pre-restart total = %d, want 3", before.Total)
	}
	oldIDs := make(map[string]bool)
	for _, tr := range before.Traces {
		oldIDs[tr.ID] = true
	}
	s.CloseTelemetry()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh server, same store directory.
	s2, st2 := exportServer(t, dir, ExportOptions{})
	defer st2.Close()
	defer s2.CloseTelemetry()
	h2 := s2.Handler()
	get(t, h2, "/api/pcs", http.StatusOK, nil)
	s2.FlushTelemetry()

	var page tracePage
	get(t, h2, "/api/trace?page=0&page_size=10", http.StatusOK, &page)
	if page.Total != 4 {
		t.Fatalf("post-restart total = %d, want 4 (3 historical + 1 new)", page.Total)
	}
	if len(page.Traces) != 4 {
		t.Fatalf("page traces = %d, want 4", len(page.Traces))
	}
	// Newest first: the fresh request leads, history follows.
	if page.Traces[0].Route != "/api/pcs" {
		t.Errorf("newest trace route = %q, want /api/pcs", page.Traces[0].Route)
	}
	recoveredOld := 0
	for _, tr := range page.Traces[1:] {
		if tr.Route != "/api/summary" {
			t.Errorf("historical trace route = %q, want /api/summary", tr.Route)
		}
		if oldIDs[tr.ID] {
			recoveredOld++
		}
		if tr.Status != http.StatusOK || tr.DurationMs < 0 {
			t.Errorf("historical trace = %+v", tr)
		}
		if !strings.Contains(string(tr.Trace), "http./api/summary") {
			t.Errorf("historical trace JSON lacks span tree: %s", tr.Trace)
		}
	}
	if recoveredOld != 3 {
		t.Errorf("recovered %d pre-restart request IDs, want 3", recoveredOld)
	}
}

func TestTracePaging(t *testing.T) {
	s, st := exportServer(t, t.TempDir(), ExportOptions{})
	defer st.Close()
	defer s.CloseTelemetry()
	h := s.Handler()
	for i := 0; i < 7; i++ {
		get(t, h, "/api/summary", http.StatusOK, nil)
	}
	s.FlushTelemetry()

	seen := make(map[string]bool)
	for pageNo := 0; pageNo < 3; pageNo++ {
		var page tracePage
		get(t, h, fmt.Sprintf("/api/trace?page=%d&page_size=3", pageNo), http.StatusOK, &page)
		if page.Total != 7 {
			t.Fatalf("page %d total = %d, want 7", pageNo, page.Total)
		}
		wantLen := 3
		if pageNo == 2 {
			wantLen = 1
		}
		if len(page.Traces) != wantLen {
			t.Fatalf("page %d has %d traces, want %d", pageNo, len(page.Traces), wantLen)
		}
		for _, tr := range page.Traces {
			if seen[tr.ID] {
				t.Errorf("trace %s repeated across pages", tr.ID)
			}
			seen[tr.ID] = true
		}
	}
	// Past the end: empty page, not an error.
	var empty tracePage
	get(t, h, "/api/trace?page=9&page_size=3", http.StatusOK, &empty)
	if len(empty.Traces) != 0 {
		t.Errorf("out-of-range page has %d traces", len(empty.Traces))
	}
	// Bad parameters are 400s.
	get(t, h, "/api/trace?page=-1", http.StatusBadRequest, nil)
	get(t, h, "/api/trace?page=0&page_size=nope", http.StatusBadRequest, nil)
	// No parameters: the live ring, an array (back-compat shape).
	var roots []obs.SpanSnapshot
	get(t, h, "/api/trace", http.StatusOK, &roots)
	if len(roots) == 0 {
		t.Error("live ring empty after traffic")
	}
}

func TestTracePagingWithoutExport(t *testing.T) {
	s := newTelemetryServer(t)
	h := s.Handler()
	get(t, h, "/api/trace?page=0", http.StatusNotFound, nil)
}

// TestExportRetention drives the retention knob: the traces table must
// stay near the cap, and the truncation must hold across a restart.
func TestExportRetention(t *testing.T) {
	dir := t.TempDir()
	s, st := exportServer(t, dir, ExportOptions{Retain: 5})
	h := s.Handler()
	for i := 0; i < 20; i++ {
		get(t, h, "/api/summary", http.StatusOK, nil)
	}
	s.FlushTelemetry()
	cap := 5 + retentionSlack(5)
	if n := s.exporter.traces.Len(); n > cap {
		t.Errorf("retained traces = %d, want <= %d", n, cap)
	}
	var page tracePage
	get(t, h, "/api/trace?page=0&page_size=50", http.StatusOK, &page)
	if page.Total > cap {
		t.Errorf("paged total = %d, want <= %d", page.Total, cap)
	}
	s.CloseTelemetry()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	s2, st2 := exportServer(t, dir, ExportOptions{Retain: 5})
	defer st2.Close()
	defer s2.CloseTelemetry()
	if n := s2.exporter.traces.Len(); n > cap {
		t.Errorf("recovered traces = %d, want <= %d (truncation must survive restart)", n, cap)
	}
}

// TestRequestWideEvents checks the middleware's structured logging end
// to end: one wide event per traced request, carrying the request ID
// the response advertised, and the same event journaled durably via the
// EventHook.
func TestRequestWideEvents(t *testing.T) {
	s, st := exportServer(t, t.TempDir(), ExportOptions{})
	defer st.Close()
	defer s.CloseTelemetry()
	var buf syncLogBuffer
	logger := obs.NewLogger(&buf, obs.LoggerOptions{
		Registry: s.Registry(),
		Hook:     s.EventHook(),
	})
	s.SetLogger(logger)
	h := s.Handler()

	req := httptest.NewRequest(http.MethodGet, "/api/summary", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/summary = %d", rec.Code)
	}
	reqID := rec.Header().Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("response missing X-Request-Id")
	}
	out := buf.String()
	if !strings.Contains(out, "msg=request") || !strings.Contains(out, "request_id="+reqID) ||
		!strings.Contains(out, "route=/api/summary") || !strings.Contains(out, "status=200") {
		t.Errorf("wide event missing fields:\n%s", out)
	}
	// Probe routes emit no wide events.
	get(t, h, "/healthz", http.StatusOK, nil)
	if n := strings.Count(buf.String(), "msg=request"); n != 1 {
		t.Errorf("wide events = %d, want 1 (probes must not log)", n)
	}

	s.FlushTelemetry()
	found := false
	for _, row := range s.exporter.events.Select(nil) {
		if row[2].S == "request" && strings.Contains(row[3].S, reqID) {
			found = true
		}
	}
	if !found {
		t.Error("request event not journaled to the events table")
	}
}

// TestHealthDegradedUnderStoreOutage is the /api/health acceptance
// path: an injected store outage opens the breaker and the verdict
// flips from ok to degraded, with the breaker named in the reasons.
func TestHealthDegradedUnderStoreOutage(t *testing.T) {
	clock := time.Unix(0, 0)
	breaker := retry.NewBreaker("server.store", retry.BreakerOptions{
		Threshold: 1,
		Cooldown:  time.Hour,
		Now:       func() time.Time { return clock },
		Registry:  obs.NewRegistry(),
	})
	s, st := resilientServer(t, Options{
		EstimateRefresh: time.Nanosecond,
		Breaker:         breaker,
	})
	dumpArtifactsOnFailure(t, s)
	h := s.Handler()

	var healthy sloStatus
	get(t, h, "/api/health", http.StatusOK, &healthy)
	if healthy.Status != "ok" || healthy.Breaker != "closed" {
		t.Fatalf("baseline health = %+v, want ok/closed", healthy)
	}

	feat := machine.PaperFeatures()[0].Name
	get(t, h, "/api/estimate?feature="+feat, http.StatusOK, nil)
	outage(t, st)
	get(t, h, "/api/estimate?feature="+feat, http.StatusOK, nil) // degraded serve, breaker trips

	var sick sloStatus
	get(t, h, "/api/health", http.StatusOK, &sick)
	if sick.Status != "degraded" {
		t.Fatalf("health during outage = %+v, want degraded", sick)
	}
	if sick.Breaker != "open" {
		t.Errorf("breaker state = %q, want open", sick.Breaker)
	}
	joined := strings.Join(sick.Reasons, "; ")
	if !strings.Contains(joined, "breaker open") {
		t.Errorf("reasons %q do not name the open breaker", joined)
	}
}

// TestHealthFailingOnBurn floods the window with 5xx answers; the burn
// rate blows through the failing threshold and /api/health answers 503.
func TestHealthFailingOnBurn(t *testing.T) {
	s := newTelemetryServer(t)
	dumpArtifactsOnFailure(t, s)
	s.SetSLO(SLOOptions{Window: time.Hour})
	h := s.Handler()

	// An unknown route pattern cannot 5xx; use the estimate surface with
	// an injected failure instead: estimates for never-served keys 503
	// while the breaker is open.
	breaker := retry.NewBreaker("server.store", retry.BreakerOptions{
		Threshold: 1, Cooldown: time.Hour, Registry: obs.NewRegistry()})
	breaker.Record(fmt.Errorf("forced"))
	s.SetResilience(Options{Breaker: breaker})
	for i := 0; i < 10; i++ {
		get(t, h, "/api/estimate?feature="+machine.PaperFeatures()[0].Name,
			http.StatusServiceUnavailable, nil)
	}

	var verdict sloStatus
	req := httptest.NewRequest(http.MethodGet, "/api/health", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/api/health = %d, want 503 (body: %s)", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &verdict); err != nil {
		t.Fatal(err)
	}
	if verdict.Status != "failing" {
		t.Errorf("verdict = %+v, want failing", verdict)
	}
	if verdict.WindowErrors == 0 || verdict.BurnRate < 10 {
		t.Errorf("window errors=%d burn=%v; want errors>0, burn>=10",
			verdict.WindowErrors, verdict.BurnRate)
	}
}

// TestSLOMetricsExposed checks /metrics refreshes and exposes the
// flare_slo_* family on every scrape.
func TestSLOMetricsExposed(t *testing.T) {
	s := newTelemetryServer(t)
	h := s.Handler()
	get(t, h, "/api/summary", http.StatusOK, nil)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE flare_slo_p50_seconds gauge",
		"# TYPE flare_slo_p99_seconds gauge",
		"# TYPE flare_slo_p999_seconds gauge",
		"# TYPE flare_slo_error_budget_burn gauge",
		"flare_slo_window_requests 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTraceHammer hammers /api/trace, Tracer.Snapshot, and traced
// requests concurrently; run with -race. The ring must stay bounded and
// every request must answer 200.
func TestTraceHammer(t *testing.T) {
	s, st := exportServer(t, t.TempDir(), ExportOptions{Retain: 16, Buffer: 1024})
	defer st.Close()
	defer s.CloseTelemetry()
	s.SetLogger(obs.NewLogger(&syncLogBuffer{}, obs.LoggerOptions{Hook: s.EventHook()}))
	h := s.Handler()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				var path string
				switch (w + i) % 3 {
				case 0:
					path = "/api/summary"
				case 1:
					path = "/api/trace"
				default:
					path = "/api/pcs"
				}
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("GET %s = %d", path, rec.Code)
					return
				}
				if snap := s.Tracer().Snapshot(); len(snap) > s.Tracer().Capacity() {
					t.Errorf("ring overflow: %d > %d", len(snap), s.Tracer().Capacity())
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.FlushTelemetry()
	if n := len(s.Tracer().Snapshot()); n > s.Tracer().Capacity() {
		t.Fatalf("final ring size %d exceeds capacity %d", n, s.Tracer().Capacity())
	}
}

// syncLogBuffer is a goroutine-safe strings.Builder for log output.
type syncLogBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncLogBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncLogBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// BenchmarkRequestTelemetry measures the middleware's per-request
// overhead on a traced route with structured logging disabled — the
// telemetry hot path every /api request pays.
func BenchmarkRequestTelemetry(b *testing.B) {
	reg := obs.NewRegistry()
	s := &Server{
		reg:      reg,
		tracer:   obs.NewTracer(reg),
		reqBase:  "bench",
		cache:    make(map[string]*estimateEntry),
		lastGood: make(map[string]estimateResponse),
	}
	s.slo = newSLOTracker(reg, SLOOptions{})
	h := s.instrument("/api/bench", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	req := httptest.NewRequest(http.MethodGet, "/api/bench", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(httptest.NewRecorder(), req)
	}
}

// BenchmarkRequestTelemetryUntraced is the same path for an untraced
// (probe/scrape) route — counters and histogram only.
func BenchmarkRequestTelemetryUntraced(b *testing.B) {
	reg := obs.NewRegistry()
	s := &Server{
		reg:      reg,
		tracer:   obs.NewTracer(reg),
		reqBase:  "bench",
		cache:    make(map[string]*estimateEntry),
		lastGood: make(map[string]estimateResponse),
	}
	s.slo = newSLOTracker(reg, SLOOptions{})
	h := s.instrument("/healthz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(httptest.NewRecorder(), req)
	}
}
