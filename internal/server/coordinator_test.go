package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"flare/internal/fault"
	"flare/internal/machine"
	"flare/internal/obs"
)

// memTransport routes peer requests to in-process handlers by URL host.
// Hosts can be retargeted mid-test (nil = node down) to simulate kills
// and restarts without real sockets.
type memTransport struct {
	mu       sync.Mutex
	handlers map[string]http.Handler
}

func newMemTransport() *memTransport {
	return &memTransport{handlers: make(map[string]http.Handler)}
}

func (m *memTransport) set(host string, h http.Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[host] = h
}

func (m *memTransport) Do(req *http.Request) (*http.Response, error) {
	m.mu.Lock()
	h := m.handlers[req.URL.Host]
	m.mu.Unlock()
	if h == nil {
		return nil, fmt.Errorf("no route to host %q", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// testCluster builds n servers over the shared test pipeline, joined
// into one ring over a memTransport. Returned handlers are indexed by
// node; nodeName(i) gives the ring names.
func testCluster(t testing.TB, n int, injectors []*fault.Injector) (*memTransport, []http.Handler, []*Server) {
	t.Helper()
	p := testPipeline(t)
	peers := make([]ClusterPeer, n)
	for i := range peers {
		peers[i] = ClusterPeer{Name: nodeName(i), URL: "http://" + nodeName(i)}
	}
	tr := newMemTransport()
	handlers := make([]http.Handler, n)
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		srv, err := NewWithTelemetry(p, machine.PaperFeatures(), obs.NewRegistry(), nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg := ClusterConfig{NodeID: nodeName(i), Peers: peers, Client: tr}
		if injectors != nil {
			cfg.Injector = injectors[i]
		}
		if err := srv.EnableCluster(cfg); err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		handlers[i] = srv.Handler()
		tr.set(nodeName(i), handlers[i])
	}
	return tr, handlers, servers
}

func nodeName(i int) string { return fmt.Sprintf("node-%d", i) }

// body performs a request against a handler and returns status + body.
func body(t testing.TB, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// allFeaturesParam is every paper feature, comma-joined in a fixed
// order for batch requests.
func allFeaturesParam() string {
	names := make([]string, 0, len(machine.PaperFeatures()))
	for _, f := range machine.PaperFeatures() {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

func TestEnableClusterValidates(t *testing.T) {
	p := testPipeline(t)
	srv, err := NewWithTelemetry(p, machine.PaperFeatures(), obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []ClusterConfig{
		{NodeID: "", Peers: []ClusterPeer{{Name: "a"}}},
		{NodeID: "a", Peers: []ClusterPeer{{Name: "b", URL: "http://b"}}},
		{NodeID: "a", Peers: []ClusterPeer{{Name: "a"}, {Name: "a"}}},
		{NodeID: "a", Peers: []ClusterPeer{{Name: "a"}, {Name: "b"}}}, // peer b has no URL
		{NodeID: "a", Peers: nil},
	}
	for i, cfg := range cases {
		if err := srv.EnableCluster(cfg); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
}

// TestClusterBatchMatchesSingleNode is the golden determinism test: a
// 3-node cluster's batch estimate must be byte-identical to a
// single-node server's, and so must every individually routed
// estimate regardless of which node receives the request.
func TestClusterBatchMatchesSingleNode(t *testing.T) {
	p := testPipeline(t)
	single, err := NewWithTelemetry(p, machine.PaperFeatures(), obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	singleH := single.Handler()
	_, handlers, servers := testCluster(t, 3, nil)

	batchPath := "/api/estimate/batch?features=" + allFeaturesParam()
	wantCode, want := body(t, singleH, batchPath)
	if wantCode != http.StatusOK {
		t.Fatalf("single-node batch = %d: %s", wantCode, want)
	}
	for i, h := range handlers {
		code, got := body(t, h, batchPath)
		if code != http.StatusOK {
			t.Fatalf("node %d batch = %d: %s", i, code, got)
		}
		if got != want {
			t.Errorf("node %d batch differs from single-node:\n got: %s\nwant: %s", i, got, want)
		}
	}

	// Single estimates are also byte-identical from every entry point.
	for _, f := range machine.PaperFeatures() {
		path := "/api/estimate?feature=" + f.Name
		_, want := body(t, singleH, path)
		for i, h := range handlers {
			if _, got := body(t, h, path); got != want {
				t.Errorf("node %d estimate %s differs from single-node", i, f.Name)
			}
		}
	}

	// The identity must come from real routing, not silent fallback:
	// with >1 features and 3 nodes, some element of some batch was
	// served by a peer.
	var forwarded uint64
	for _, srv := range servers {
		forwarded += srv.reg.Counter("flare_cluster_forward_total",
			"estimate routing decisions by the cluster coordinator",
			"result", "forwarded").Value()
	}
	if forwarded == 0 {
		t.Error("no estimate was ever forwarded to a ring peer")
	}
}

// TestClusterSurvivesNodeKillAndRestart kills a remote node (transport
// returns errors), requires byte-identical fallback service, then
// restarts it and requires the bytes again.
func TestClusterSurvivesNodeKillAndRestart(t *testing.T) {
	p := testPipeline(t)
	single, err := NewWithTelemetry(p, machine.PaperFeatures(), obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	singleH := single.Handler()
	tr, handlers, _ := testCluster(t, 3, nil)

	batchPath := "/api/estimate/batch?features=" + allFeaturesParam()
	_, want := body(t, singleH, batchPath)

	// Kill nodes 1 and 2: node 0 must fall back to local computation for
	// every remotely owned feature and still produce identical bytes.
	alive := tr.handlers[nodeName(1)]
	tr.set(nodeName(1), nil)
	tr.set(nodeName(2), nil)
	code, got := body(t, handlers[0], batchPath)
	if code != http.StatusOK {
		t.Fatalf("batch with dead peers = %d: %s", code, got)
	}
	if got != want {
		t.Errorf("batch with dead peers differs from single-node:\n got: %s\nwant: %s", got, want)
	}

	// Restart node 1: forwarding resumes and the bytes are unchanged.
	tr.set(nodeName(1), alive)
	if _, got := body(t, handlers[0], batchPath); got != want {
		t.Errorf("batch after restart differs from single-node")
	}
}

// TestClusterFaultScheduleByteIdentical drives the coordinator through
// a deterministic fault schedule at the cluster.peer.request site and
// requires byte-identical responses throughout.
func TestClusterFaultScheduleByteIdentical(t *testing.T) {
	p := testPipeline(t)
	single, err := NewWithTelemetry(p, machine.PaperFeatures(), obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	singleH := single.Handler()

	injectors := make([]*fault.Injector, 3)
	for i := range injectors {
		rules, err := fault.ParseSpec("cluster.peer.request=error@0.5")
		if err != nil {
			t.Fatal(err)
		}
		inj, err := fault.New(rules, int64(42+i), obs.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		injectors[i] = inj
	}
	_, handlers, _ := testCluster(t, 3, injectors)

	batchPath := "/api/estimate/batch?features=" + allFeaturesParam()
	_, want := body(t, singleH, batchPath)
	for round := 0; round < 8; round++ {
		h := handlers[round%3]
		code, got := body(t, h, batchPath)
		if code != http.StatusOK {
			t.Fatalf("round %d: batch = %d: %s", round, code, got)
		}
		if got != want {
			t.Errorf("round %d: batch under faults differs from single-node", round)
		}
	}
}

func TestClusterLoopGuardServesLocally(t *testing.T) {
	_, handlers, _ := testCluster(t, 2, nil)
	feat := machine.PaperFeatures()[0].Name
	req := httptest.NewRequest(http.MethodGet, "/api/estimate?feature="+feat, nil)
	req.Header.Set(clusterForwardHeader, "node-9")
	// Both nodes must answer 200 locally without re-forwarding, whatever
	// the ring says about ownership.
	for i, h := range handlers {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("node %d answered %d to a forwarded request", i, rec.Code)
		}
	}
}

func TestBatchValidatesBeforeFanout(t *testing.T) {
	h := testServer(t).Handler()
	var e errorResponse
	get(t, h, "/api/estimate/batch", http.StatusBadRequest, &e)
	get(t, h, "/api/estimate/batch?features=nope", http.StatusNotFound, &e)
	if !strings.Contains(e.Error, "nope") {
		t.Errorf("error %q does not name the unknown feature", e.Error)
	}
	feat := machine.PaperFeatures()[0].Name
	get(t, h, "/api/estimate/batch?features="+feat+",bogus", http.StatusNotFound, &e)
}

func TestClusterHealthSection(t *testing.T) {
	_, handlers, _ := testCluster(t, 3, nil)
	var st struct {
		Cluster *struct {
			NodeID string `json:"node_id"`
			Role   string `json:"role"`
			Peers  []struct {
				Name   string `json:"name"`
				Status string `json:"status"`
			} `json:"peers"`
		} `json:"cluster"`
	}
	get(t, handlers[1], "/api/health", http.StatusOK, &st)
	if st.Cluster == nil {
		t.Fatal("/api/health has no cluster section on a cluster node")
	}
	if st.Cluster.NodeID != "node-1" || st.Cluster.Role != "single" {
		t.Errorf("cluster section = %+v", st.Cluster)
	}
	if len(st.Cluster.Peers) != 2 {
		t.Fatalf("peers = %+v, want 2 entries", st.Cluster.Peers)
	}
	for _, p := range st.Cluster.Peers {
		if p.Status != "ok" {
			t.Errorf("peer %s status %q, want ok", p.Name, p.Status)
		}
	}

	// Single-node servers must not grow a cluster section.
	var plain map[string]interface{}
	get(t, testServer(t).Handler(), "/api/health", http.StatusOK, &plain)
	if _, has := plain["cluster"]; has {
		t.Error("single-node /api/health has a cluster section")
	}
}

// BenchmarkClusterBatchEstimate measures a warmed 3-node batch
// round-trip through the coordinator (ring routing + in-process
// forwarding + merge).
func BenchmarkClusterBatchEstimate(b *testing.B) {
	_, handlers, _ := testCluster(b, 3, nil)
	batchPath := "/api/estimate/batch?features=" + allFeaturesParam()
	if code, out := body(b, handlers[0], batchPath); code != http.StatusOK {
		b.Fatalf("warm-up batch = %d: %s", code, out)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code, _ := body(b, handlers[i%3], batchPath); code != http.StatusOK {
			b.Fatal("batch failed")
		}
	}
}
