// SLO health: sliding-window latency quantiles and error-budget burn
// over the request telemetry the middleware already records. The
// tracker snapshots the cumulative flare_http_request_duration_seconds
// histogram (plus error and shed counters) on each evaluation, keeps a
// short ring of timestamped snapshots, and differences the newest
// against the oldest inside the window — so p50/p99/p999 and the burn
// rate describe recent traffic, not the process's whole lifetime. The
// verdict (ok/degraded/failing, with reasons) feeds /api/health and the
// flare_slo_* gauges feed /metrics and flare-top.
package server

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"flare/internal/obs"
	"flare/internal/retry"
)

// httpLatencyFamily is the middleware's request latency histogram, the
// SLO layer's data source.
const httpLatencyFamily = "flare_http_request_duration_seconds"

// SLOOptions tunes the server's health verdict.
type SLOOptions struct {
	// Window is how far back quantiles and burn rate look. <= 0 means 5m.
	Window time.Duration
	// MaxSamples bounds the snapshot ring. <= 0 means 128.
	MaxSamples int
	// LatencyObjective is the p99 target; a window p99 above it degrades
	// the verdict. <= 0 means 2s.
	LatencyObjective time.Duration
	// Availability is the SLO target used for burn-rate math: burn =
	// error_rate / (1 - Availability). Out of (0,1) means 0.999.
	Availability float64
	// DegradedBurn / FailingBurn are burn-rate thresholds. <= 0 means
	// 1 (eating budget exactly on schedule) and 10 (eating it 10x fast).
	DegradedBurn float64
	FailingBurn  float64
	// Now is the clock; nil means time.Now. Injected in tests.
	Now func() time.Time
}

func (o SLOOptions) withDefaults() SLOOptions {
	if o.Window <= 0 {
		o.Window = 5 * time.Minute
	}
	if o.MaxSamples <= 0 {
		o.MaxSamples = 128
	}
	if o.LatencyObjective <= 0 {
		o.LatencyObjective = 2 * time.Second
	}
	if o.Availability <= 0 || o.Availability >= 1 {
		o.Availability = 0.999
	}
	if o.DegradedBurn <= 0 {
		o.DegradedBurn = 1
	}
	if o.FailingBurn <= 0 {
		o.FailingBurn = 10
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// sloSample is one cumulative capture of the request telemetry.
type sloSample struct {
	t        time.Time
	hist     obs.HistogramState
	requests uint64
	errors   uint64
	shed     uint64
}

// sloTracker computes windowed SLO state. Safe for concurrent use.
type sloTracker struct {
	opts SLOOptions
	reg  *obs.Registry

	mu      sync.Mutex
	samples []sloSample // time-ordered; samples[0] is the window baseline

	p50, p99, p999 *obs.Gauge
	burn           *obs.Gauge
	errRate        *obs.Gauge
	windowReqs     *obs.Gauge
}

func newSLOTracker(reg *obs.Registry, opts SLOOptions) *sloTracker {
	return &sloTracker{
		opts: opts.withDefaults(),
		reg:  reg,
		p50: reg.Gauge("flare_slo_p50_seconds",
			"request latency p50 over the SLO window"),
		p99: reg.Gauge("flare_slo_p99_seconds",
			"request latency p99 over the SLO window"),
		p999: reg.Gauge("flare_slo_p999_seconds",
			"request latency p99.9 over the SLO window"),
		burn: reg.Gauge("flare_slo_error_budget_burn",
			"error-budget burn rate over the SLO window (1 = on schedule)"),
		errRate: reg.Gauge("flare_slo_error_rate",
			"5xx fraction of requests over the SLO window"),
		windowReqs: reg.Gauge("flare_slo_window_requests",
			"requests observed inside the SLO window"),
	}
}

// capture reads the cumulative telemetry the middleware maintains.
func (s *sloTracker) capture(now time.Time) sloSample {
	sm := sloSample{t: now}
	if st, ok := s.reg.HistogramState(httpLatencyFamily); ok {
		sm.hist = st
	}
	if n, ok := s.reg.CounterFamilyTotal("flare_http_requests_total", nil); ok {
		sm.requests = n
	}
	if n, ok := s.reg.CounterFamilyTotal("flare_http_requests_total", func(labels string) bool {
		return strings.Contains(labels, `code="5`)
	}); ok {
		sm.errors = n
	}
	if n, ok := s.reg.CounterFamilyTotal("flare_shed_total", nil); ok {
		sm.shed = n
	}
	return sm
}

// sloStatus is the computed window state behind /api/health.
type sloStatus struct {
	Status         string   `json:"status"` // ok | degraded | failing
	Reasons        []string `json:"reasons,omitempty"`
	Breaker        string   `json:"breaker"`
	WindowSeconds  float64  `json:"window_seconds"`
	WindowRequests uint64   `json:"window_requests"`
	WindowErrors   uint64   `json:"window_errors"`
	WindowShed     uint64   `json:"window_shed"`
	ErrorRate      float64  `json:"error_rate"`
	BurnRate       float64  `json:"error_budget_burn"`
	P50Ms          float64  `json:"p50_ms"`
	P99Ms          float64  `json:"p99_ms"`
	P999Ms         float64  `json:"p999_ms"`
	// Cluster reports per-peer health and replication lag on nodes
	// running with EnableCluster; absent on single-node servers.
	Cluster *clusterHealth `json:"cluster,omitempty"`
}

// evaluate appends a fresh sample, prunes the window, computes the
// windowed quantiles/burn, updates the flare_slo_* gauges, and returns
// the verdict given the breaker's current state.
func (s *sloTracker) evaluate(breaker retry.State) sloStatus {
	s.mu.Lock()
	defer s.mu.Unlock()

	now := s.opts.Now()
	cur := s.capture(now)
	s.samples = append(s.samples, cur)
	// Prune to the window, but keep the newest sample that is *older*
	// than the window as the delta baseline — without it the first
	// in-window sample would truncate the window to its own age.
	cut := 0
	for i, sm := range s.samples {
		if now.Sub(sm.t) > s.opts.Window {
			cut = i
		}
	}
	s.samples = s.samples[cut:]
	trimmed := false
	if len(s.samples) > s.opts.MaxSamples {
		s.samples = s.samples[len(s.samples)-s.opts.MaxSamples:]
		trimmed = true
	}

	// While every retained sample is younger than the window, the window
	// reaches back past process start, so the baseline is zero (lifetime
	// totals). Without this, two evaluations milliseconds apart — e.g. a
	// /metrics scrape followed by /api/health — would collapse the
	// "window" to the gap between them. Once history genuinely spans the
	// window (or the ring overflowed), the oldest retained sample is the
	// baseline.
	base := sloSample{}
	if old := s.samples[0]; trimmed || now.Sub(old.t) > s.opts.Window {
		base = old
	}
	delta := cur.hist.Sub(base.hist)
	reqs := cur.requests - base.requests
	errs := cur.errors - base.errors
	shed := cur.shed - base.shed

	st := sloStatus{
		Breaker:        breaker.String(),
		WindowSeconds:  s.opts.Window.Seconds(),
		WindowRequests: reqs,
		WindowErrors:   errs,
		WindowShed:     shed,
		P50Ms:          1000 * delta.Quantile(0.50),
		P99Ms:          1000 * delta.Quantile(0.99),
		P999Ms:         1000 * delta.Quantile(0.999),
	}
	if reqs > 0 {
		st.ErrorRate = float64(errs) / float64(reqs)
	}
	st.BurnRate = st.ErrorRate / (1 - s.opts.Availability)

	var reasons []string
	failing := false
	if st.BurnRate >= s.opts.FailingBurn {
		failing = true
		reasons = append(reasons, fmt.Sprintf(
			"error-budget burn %.1fx >= failing threshold %.1fx", st.BurnRate, s.opts.FailingBurn))
	}
	if breaker == retry.Open {
		reasons = append(reasons, "store circuit breaker open")
	}
	if !failing && st.BurnRate >= s.opts.DegradedBurn {
		reasons = append(reasons, fmt.Sprintf(
			"error-budget burn %.1fx >= degraded threshold %.1fx", st.BurnRate, s.opts.DegradedBurn))
	}
	if p99 := time.Duration(st.P99Ms * float64(time.Millisecond)); reqs > 0 && p99 > s.opts.LatencyObjective {
		reasons = append(reasons, fmt.Sprintf(
			"window p99 %s exceeds objective %s", p99.Round(time.Millisecond), s.opts.LatencyObjective))
	}
	if shed > 0 {
		reasons = append(reasons, fmt.Sprintf("%d requests shed in window", shed))
	}
	switch {
	case failing:
		st.Status = "failing"
	case len(reasons) > 0:
		st.Status = "degraded"
	default:
		st.Status = "ok"
	}
	st.Reasons = reasons

	s.p50.Set(delta.Quantile(0.50))
	s.p99.Set(delta.Quantile(0.99))
	s.p999.Set(delta.Quantile(0.999))
	s.burn.Set(st.BurnRate)
	s.errRate.Set(st.ErrorRate)
	s.windowReqs.Set(float64(reqs))
	return st
}

// breakerState reports the resilience breaker's position (Closed when
// resilience was never configured).
func (s *Server) breakerState() retry.State {
	if s.opts.Breaker == nil {
		return retry.Closed
	}
	return s.opts.Breaker.State()
}

// handleSLOHealth serves the SLO verdict. ok and degraded answer 200 —
// a degraded server is still serving — while failing answers 503 so
// load balancers and probes stop routing to it.
func (s *Server) handleSLOHealth(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	st := s.slo.evaluate(s.breakerState())
	if c := s.cluster; c != nil {
		st.Cluster = c.health()
	}
	code := http.StatusOK
	if st.Status == "failing" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}
