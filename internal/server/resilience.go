// Graceful degradation for the estimate surface. The server treats the
// durable metric database (and the store under it) as its audit log:
// every estimate it serves is journaled into an "estimates" table. When
// the store is unhealthy — persists fail or the circuit breaker guarding
// them is open — the server degrades instead of erroring: known keys are
// served from the last successfully journaled estimate, flagged
// "degraded": true, and only keys with no history answer 503. A
// concurrency limiter sheds excess load with 429 + Retry-After before it
// can pile onto a struggling store.
package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"flare/internal/fault"
	"flare/internal/metricdb"
	"flare/internal/retry"
)

// Options tunes the server's resilience behaviour. The zero value
// disables shedding, timeouts, and staleness — the permissive defaults a
// test harness wants; production mains should set real limits (see
// DefaultResilience).
type Options struct {
	// RequestTimeout bounds how long an estimate request waits on the
	// shared computation before answering 503. 0 waits forever.
	RequestTimeout time.Duration
	// MaxConcurrent bounds in-flight /api requests; excess requests are
	// shed immediately with 429 + Retry-After. 0 means unlimited.
	// /healthz and /metrics are exempt so probes and scrapes always land.
	MaxConcurrent int
	// EstimateRefresh ages the estimate cache: entries older than this
	// are recomputed (and re-journaled) on next request. 0 caches forever.
	EstimateRefresh time.Duration
	// Breaker guards the estimate-journal path; nil gets a default
	// breaker registered in the server's registry.
	Breaker *retry.Breaker
	// Retry is the journal-persist retry policy; the zero value uses
	// retry defaults with the op name "server.persist".
	Retry retry.Policy
	// Injector optionally injects faults at the "server.estimate" site
	// (evaluated once per estimate computation — latency faults there
	// exercise RequestTimeout). Nil injects nothing.
	Injector *fault.Injector
}

// DefaultResilience returns production-shaped limits for flare-server.
func DefaultResilience() Options {
	return Options{
		RequestTimeout:  30 * time.Second,
		MaxConcurrent:   64,
		EstimateRefresh: 15 * time.Minute,
	}
}

// SetResilience installs resilience options. Call before Handler and
// before serving; later calls replace the limiter and breaker wholesale.
func (s *Server) SetResilience(opts Options) {
	if opts.Breaker == nil {
		opts.Breaker = retry.NewBreaker("server.store", retry.BreakerOptions{Registry: s.reg})
	}
	if opts.Retry.Name == "" {
		opts.Retry.Name = "server.persist"
	}
	if opts.Retry.Registry == nil {
		opts.Retry.Registry = s.reg
	}
	s.opts = opts
	if opts.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, opts.MaxConcurrent)
	} else {
		s.sem = nil
	}
}

// limit wraps an API handler with the concurrency limiter. Admission is
// non-blocking: a full semaphore sheds the request immediately — under
// overload, fast rejection beats a growing queue.
func (s *Server) limit(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sem := s.sem
		if sem == nil {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			s.reg.Counter("flare_shed_total",
				"requests shed by the concurrency limiter", "route", route).Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests,
				"server at concurrency limit (%d in flight)", cap(sem))
		}
	})
}

// estimatesTable is the audit-log table every served estimate is
// journaled into (durable when the attached DB is store-backed).
const estimatesTable = "estimates"

// persistEstimate journals one estimate through the retry policy. A nil
// DB persists nothing and reports success — resilience machinery only
// engages on servers with a durable database attached.
func (s *Server) persistEstimate(resp estimateResponse) error {
	if s.db == nil {
		return nil
	}
	t, err := s.db.Table(estimatesTable)
	if err != nil {
		t, err = s.db.CreateTable(estimatesTable, []metricdb.Column{
			{Name: "feature", Type: metricdb.TypeString},
			{Name: "job", Type: metricdb.TypeString},
			{Name: "reduction_pct", Type: metricdb.TypeFloat},
			{Name: "scenarios", Type: metricdb.TypeInt},
		})
		if err != nil {
			return fmt.Errorf("server: creating %s table: %w", estimatesTable, err)
		}
	}
	// The estimate is computed once per key by a detached singleflight
	// goroutine serving every waiter, and the journal entry is the audit
	// record of what was served — it must complete (or exhaust retries)
	// even when the requester that triggered the computation hangs up.
	//lint:exempt ctxflow audit journaling is deliberately detached from request cancellation
	return s.opts.Retry.Do(context.Background(), func() error {
		return t.Insert(metricdb.Row{
			metricdb.String(resp.Feature),
			metricdb.String(resp.Job),
			metricdb.Float(resp.ReductionPct),
			metricdb.Int(int64(resp.ScenariosReplayed)),
		})
	})
}

// degrade resolves a compute that could not be journaled: serve the
// last-known-good estimate for the key flagged degraded, or 503 with
// Retry-After when the key has never been served successfully.
func (s *Server) degrade(e *estimateEntry, key, why string) {
	e.evict = true // degraded results are never cached: next request re-probes
	s.mu.Lock()
	lg, ok := s.lastGood[key]
	s.mu.Unlock()
	if ok {
		e.resp = lg
		e.resp.Degraded = true
		e.status = http.StatusOK
		return
	}
	e.status = http.StatusServiceUnavailable
	e.retryAfter = true
	e.errMsg = "estimate temporarily unavailable: " + why
}

// countDegraded records one degraded response at serve time. Counting
// responses (not degrade computations) keeps flare_degraded_responses_total
// equal to what clients actually observe: a single degraded singleflight
// entry can satisfy many concurrent waiters, and each of those waiters
// receives a degraded body.
func (s *Server) countDegraded(resp estimateResponse) {
	if resp.Degraded {
		s.reg.Counter("flare_degraded_responses_total",
			"estimates served from last-known-good while the store is unhealthy").Inc()
	}
}

// retryAfterHeader stamps the standard back-off hint on shed/degraded
// error responses.
func retryAfterHeader(w http.ResponseWriter, d time.Duration) {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}
